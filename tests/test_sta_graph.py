"""Timing-graph subsystem: structure validation, levelization, batch analysis."""

import warnings

import pytest

from repro.core import StageSolver
from repro.errors import ModelingError
from repro.experiments import (fanout_tree, parallel_chains, reconvergent_graph)
from repro.interconnect import RLCLine
from repro.sta import (GraphEngine, GraphNet, GraphTimer, PathTimer,
                       PrimaryInput, TimingGraph, TimingPath, TimingStage,
                       chain_graph, flip_transition)
from repro.units import mm, nH, pF, ps


@pytest.fixture(scope="module")
def line():
    return RLCLine(resistance=20.0, inductance=nH(1.05), capacitance=pF(0.22),
                   length=mm(1))


def build_diamond(line):
    nets = [
        GraphNet("root", 100.0, line, fanout=("a", "b")),
        GraphNet("a", 75.0, line, fanout=("sink",)),
        GraphNet("b", 75.0, line, fanout=("c",)),
        GraphNet("c", 75.0, line, fanout=("sink",)),
        GraphNet("sink", 50.0, line, receiver_size=25.0),
    ]
    return TimingGraph(nets, {"root": PrimaryInput(slew=ps(100))})


@pytest.fixture(scope="module")
def diamond(line):
    return build_diamond(line)


@pytest.fixture()
def fresh_diamond(line):
    """A private diamond per test — for tests that edit/constrain the graph."""
    return build_diamond(line)


@pytest.fixture(scope="module")
def shared_solver():
    """One memo for the constraint/edit tests: repeated configs solve once."""
    return StageSolver()


class TestStructure:
    def test_flip_transition(self):
        assert flip_transition("rise") == "fall"
        assert flip_transition("fall") == "rise"
        with pytest.raises(ModelingError):
            flip_transition("wiggle")

    def test_net_validation(self, line):
        with pytest.raises(ModelingError):
            GraphNet("", 75.0, line)
        with pytest.raises(ModelingError):
            GraphNet("n", 0.0, line)
        with pytest.raises(ModelingError):
            GraphNet("n", 75.0, line, receiver_size=-1.0)
        with pytest.raises(ModelingError):
            GraphNet("n", 75.0, line, extra_load=-1e-15)
        with pytest.raises(ModelingError):
            GraphNet("n", 75.0, line, fanout=("x", "x"))

    def test_graph_validation(self, line):
        with pytest.raises(ModelingError):
            TimingGraph([], {})
        with pytest.raises(ModelingError):  # duplicate name
            TimingGraph([GraphNet("n", 75.0, line), GraphNet("n", 50.0, line)],
                        {"n": PrimaryInput(slew=ps(100))})
        with pytest.raises(ModelingError):  # unknown fanout target
            TimingGraph([GraphNet("n", 75.0, line, fanout=("ghost",))],
                        {"n": PrimaryInput(slew=ps(100))})
        with pytest.raises(ModelingError):  # self loop
            TimingGraph([GraphNet("n", 75.0, line, fanout=("n",))],
                        {"n": PrimaryInput(slew=ps(100))})
        with pytest.raises(ModelingError):  # root without stimulus
            TimingGraph([GraphNet("n", 75.0, line)], {})
        with pytest.raises(ModelingError):  # stimulus on non-root
            TimingGraph([GraphNet("a", 75.0, line, fanout=("b",)),
                         GraphNet("b", 75.0, line)],
                        {"a": PrimaryInput(slew=ps(100)),
                         "b": PrimaryInput(slew=ps(100))})
        with pytest.raises(ModelingError):  # cycle
            TimingGraph([GraphNet("a", 75.0, line, fanout=("b",)),
                         GraphNet("b", 75.0, line, fanout=("a",))], {})

    def test_primary_input_validation(self):
        with pytest.raises(ModelingError):
            PrimaryInput(slew=0.0)
        with pytest.raises(ModelingError):
            PrimaryInput(slew=ps(100), transition="sideways")

    def test_levelization(self, diamond):
        assert diamond.levels == [["root"], ["a", "b"], ["c"], ["sink"]]
        assert diamond.n_levels == 4
        assert diamond.roots == ["root"]
        assert diamond.sinks == ["sink"]
        assert diamond.fanin("sink") == ["a", "c"]
        assert len(diamond) == 5
        assert "root" in diamond and "ghost" not in diamond
        assert "5 nets" in diamond.describe()

    def test_chain_graph_name_collision(self, line):
        # A literal "s#1" stage must not collide with the uniquified duplicate.
        path = TimingPath("p", [
            TimingStage("s", driver_size=75, line=line, receiver_size=75),
            TimingStage("s#1", driver_size=75, line=line, receiver_size=75),
            TimingStage("s", driver_size=75, line=line, receiver_size=50),
        ], input_slew=ps(100))
        graph, names = chain_graph(path)
        assert len(set(names)) == 3
        assert names[0] == "s" and names[1] == "s#1"

    def test_chain_graph_shape(self, line):
        path = TimingPath("p", [
            TimingStage("s", driver_size=75, line=line, receiver_size=100),
            TimingStage("s", driver_size=100, line=line, receiver_size=50),
        ], input_slew=ps(100))
        graph, names = chain_graph(path)
        assert names == ["s", "s#1"]  # duplicate stage names are uniquified
        assert graph.levels == [["s"], ["s#1"]]
        assert graph.nets["s"].fanout == ("s#1",)
        assert graph.nets["s"].receiver_size is None
        assert graph.nets["s#1"].receiver_size == 50


class TestLoadsAndMerging:
    def test_fanout_load_matches_stage_load(self, line, library, tech):
        # A chain net's gate load (from its fanout driver) must be bit-identical
        # to the single-path engine's receiver load for the same stage.
        path = TimingPath("p", [
            TimingStage("s1", driver_size=75, line=line, receiver_size=100),
            TimingStage("s2", driver_size=100, line=line, receiver_size=50),
        ], input_slew=ps(100))
        timer = PathTimer(library=library, tech=tech)
        graph, names = chain_graph(path)
        graph_timer = timer._graph_timer
        for stage, name in zip(path.stage_list, names):
            assert graph_timer.net_load(graph, graph.nets[name]) == \
                timer._stage_load(stage)

    def test_fanout_load_sums_every_receiver(self, line, library, tech):
        nets = [GraphNet("n", 75.0, line, fanout=("x", "y"), receiver_size=25.0,
                         extra_load=2e-15),
                GraphNet("x", 100.0, line), GraphNet("y", 50.0, line)]
        graph = TimingGraph(nets, {"n": PrimaryInput(slew=ps(100))})
        timer = GraphTimer(library=library, tech=tech)
        expected = (2e-15 + tech.inverter_input_capacitance(100)
                    + tech.inverter_input_capacitance(50)
                    + tech.inverter_input_capacitance(25))
        assert timer.net_load(graph, graph.nets["n"]) == expected

    def test_worst_arrival_merge_wins(self, line, library):
        # sink's fanins have the same parity but different depth, so the longer
        # branch must set the merged arrival and the traceback source.
        nets = [
            GraphNet("root", 100.0, line, fanout=("fast", "slow_a")),
            GraphNet("fast", 75.0, line, fanout=("mid",)),
            GraphNet("mid", 75.0, line, fanout=("sink",)),
            GraphNet("slow_a", 25.0, line, fanout=("slow_b",)),
            GraphNet("slow_b", 25.0, line, fanout=("sink",)),
            GraphNet("sink", 50.0, line, receiver_size=25.0),
        ]
        graph = TimingGraph(nets, {"root": PrimaryInput(slew=ps(100))})
        report = GraphTimer(library=library).analyze(graph)
        sink_events = report.events["sink"]
        assert set(sink_events) == {"fall"}  # equal parity: one transition
        event = sink_events["fall"]
        slow = report.events["slow_b"]["rise"]
        mid = report.events["mid"]["rise"]
        assert event.input_arrival == max(slow.output_arrival, mid.output_arrival)
        winner = "slow_b" if slow.output_arrival > mid.output_arrival else "mid"
        assert event.source == (winner, "rise")

    def test_reconvergent_graph_times_both_transitions(self, library):
        report = GraphTimer(library=library).analyze(reconvergent_graph())
        sink = report.events["sink"]
        assert set(sink) == {"rise", "fall"}
        assert report.n_events == len(report.graph) + 1
        # Traceback from the worst sink event reaches the primary input.
        path = report.critical_path()
        assert path[0].net.name == "root"
        assert path[0].source is None
        assert path[-1].net.name == "sink"
        arrivals = [event.output_arrival for event in path]
        assert arrivals == sorted(arrivals)


class TestGraphTimer:
    def test_rejects_non_graph(self, library):
        with pytest.raises(ModelingError):
            GraphTimer(library=library).analyze("not a graph")

    def test_report_queries_and_formatting(self, library, diamond):
        report = GraphTimer(library=library).analyze(diamond)
        assert report.arrival("sink") == report.worst_event().output_arrival
        assert report.arrival("sink", "fall") == \
            report.events["sink"]["fall"].output_arrival
        with pytest.raises(ModelingError):
            report.event("ghost")
        with pytest.raises(ModelingError):
            report.event("root", "fall")  # the PI rises, so no fall event
        text = report.format_report()
        assert "cache hit rate" in text
        assert "critical path" in text

    def test_memoization_across_repeated_chains(self, library, line):
        # One line flavor -> the 6 chains are bit-identical.
        graph = parallel_chains(6, 3, lines=[line], input_slew=ps(100))
        solver = StageSolver()
        report = GraphTimer(library=library, solver=solver).analyze(graph)
        # 6 identical chains share one chain's worth of unique stage solves.
        assert report.stats.computed == 3
        assert report.stats.memo_hits == 15
        assert report.stats.hit_rate == pytest.approx(15 / 18)
        arrivals = {report.arrival(name) for name in graph.sinks}
        assert len(arrivals) == 1  # identical chains, identical arrivals

    def test_fanout_tree_analysis(self, library):
        graph = fanout_tree(3)
        report = GraphTimer(library=library).analyze(graph)
        assert report.n_events == len(graph) == 15
        # Every level deeper arrives strictly later.
        assert report.arrival("t") < report.arrival("t.0") < \
            report.arrival("t.0.0") < report.arrival("t.0.0.0")

    def test_parallel_jobs_respect_slew_quantum(self, library, line):
        # Workers must solve at the quantized slew the fingerprint was built
        # from, or parallel runs would poison the memo with off-grid results.
        graph = parallel_chains(2, 2, lines=[line], input_slew=ps(100.3))
        quantum = ps(5.0)
        serial = GraphTimer(library=library,
                            solver=StageSolver(slew_quantum=quantum)).analyze(graph)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            parallel = GraphTimer(library=library,
                                  solver=StageSolver(slew_quantum=quantum),
                                  jobs=2).analyze(graph)
        for name in graph.nets:
            for transition, event in serial.events[name].items():
                other = parallel.events[name][transition]
                # Quantization snaps both runs onto the same grid: exact.
                assert event.input_slew == other.input_slew
                # Serial solves run batched (kernel-convolution far ends),
                # workers run the scalar oracle: equal to solver roundoff.
                assert event.output_arrival == pytest.approx(
                    other.output_arrival, rel=1e-9)

    def test_parallel_jobs_match_serial(self, library):
        graph = parallel_chains(4, 2, input_slew=ps(100))
        serial = GraphTimer(library=library).analyze(graph)
        with warnings.catch_warnings():
            # In sandboxed environments the pool may fall back to serial; the
            # results must be identical either way.
            warnings.simplefilter("ignore", RuntimeWarning)
            parallel = GraphTimer(library=library, jobs=2).analyze(graph)
        for name in graph.nets:
            for transition, event in serial.events[name].items():
                other = parallel.events[name][transition]
                # Serial levels solve batched, workers solve scalar; the two
                # paths agree to solver roundoff (<= 1e-9 relative, the
                # benchmark-enforced equivalence gate).
                assert event.output_arrival == pytest.approx(
                    other.output_arrival, rel=1e-9)
                assert event.input_slew == pytest.approx(
                    other.input_slew, rel=1e-9)
                assert event.solution.far_slew == pytest.approx(
                    other.solution.far_slew, rel=1e-9)


class TestConstraintsAndSlack:
    def engine(self, library, shared_solver):
        return GraphEngine(library=library, solver=shared_solver)

    def test_constraint_validation(self, line, fresh_diamond):
        graph = fresh_diamond
        with pytest.raises(ModelingError):
            graph.set_clock_period(0.0)
        with pytest.raises(ModelingError):
            graph.set_required("ghost", ps(500))
        with pytest.raises(ModelingError):
            graph.set_required("sink", ps(500), transition="sideways")
        assert not graph.constrained
        graph.set_clock_period(ps(500))
        assert graph.constrained and graph.constraints_dirty

    def test_unconstrained_graph_reports_no_slack(self, library, shared_solver,
                                                  fresh_diamond):
        report = self.engine(library, shared_solver).analyze(fresh_diamond)
        assert report.worst_slack is None and report.wns is None
        assert report.slack("sink") is None
        with pytest.raises(ModelingError):
            report.worst_slack_event()

    def test_clock_period_constrains_every_endpoint(self, library,
                                                    shared_solver,
                                                    fresh_diamond):
        fresh_diamond.set_clock_period(ps(800))
        report = self.engine(library, shared_solver).analyze(fresh_diamond)
        for event in report.events["sink"].values():
            assert event.required == ps(800)
            assert event.slack == ps(800) - event.output_arrival
        # Required times propagate to the root: the tightest path wins.
        assert report.worst_slack == report.slack("sink")
        assert report.wns == 0.0  # 800 ps is comfortably met
        root = report.events["root"]["rise"]
        assert root.required is not None
        assert root.slack >= report.worst_slack - 1e-15  # 1 fs float headroom

    def test_mixed_rise_fall_required_pins(self, library, shared_solver, line):
        # The diamond's sink legitimately sees both transitions (its fanin
        # branches differ in parity); pin each far-end direction to a different
        # requirement and check they stay separate.
        graph = reconvergent_graph(line=line)
        engine = self.engine(library, shared_solver)
        base = engine.analyze(graph)
        rise_arrival = base.events["sink"]["fall"].output_arrival  # out rises
        fall_arrival = base.events["sink"]["rise"].output_arrival  # out falls
        # Make the *earlier-arriving* output edge the critical one: its pin is
        # much tighter, so worst slack must not follow worst arrival.
        early_out, late_out = ("rise", "fall") \
            if rise_arrival <= fall_arrival else ("fall", "rise")
        graph.set_required("sink", ps(220), transition=early_out)
        graph.set_required("sink", ps(900), transition=late_out)
        report = engine.analyze(graph)
        events = {event.output_transition: event
                  for event in report.events["sink"].values()}
        assert events[early_out].required == ps(220)
        assert events[late_out].required == ps(900)
        worst = report.worst_slack_event()
        assert worst.output_transition == early_out
        assert worst is not report.worst_event()  # slack-critical != arrival-critical
        # Slack traceback follows the constrained event's worst-arrival sources
        # back to the primary input, and slack never improves along the path.
        path = report.slack_path()
        assert path[0].net.name == "root" and path[0].source is None
        assert path[-1] is worst
        slacks = [event.slack for event in path]
        assert all(s is not None for s in slacks)
        assert slacks[-1] == report.worst_slack
        # Upstream slacks equal the endpoint slack along the critical chain
        # (up to float re-association: backward propagation re-brackets the
        # same sum, so mid-path values may sit one ULP off).
        assert min(slacks) == pytest.approx(report.worst_slack, rel=1e-12)

    def test_explicit_pin_overrides_clock_period(self, library, shared_solver,
                                                 fresh_diamond):
        fresh_diamond.set_clock_period(ps(800))
        fresh_diamond.set_required("sink", ps(300))  # both directions
        report = self.engine(library, shared_solver).analyze(fresh_diamond)
        for event in report.events["sink"].values():
            assert event.required == ps(300)

    def test_negative_slack_and_wns(self, library, shared_solver,
                                    fresh_diamond):
        fresh_diamond.set_required("sink", ps(100))
        report = self.engine(library, shared_solver).analyze(fresh_diamond)
        assert report.worst_slack < 0
        assert report.wns == report.worst_slack
        table = report.endpoint_events()
        assert table[0] is report.worst_slack_event()
        assert "slack" in report.format_report()

    def test_required_merges_min_over_fanout(self, library, shared_solver,
                                             line):
        # root fans out to two sinks with different pins; the root's required
        # time must be the tighter branch's requirement minus that branch's
        # stage delay (min-required mirror of the worst-arrival merge).
        nets = [
            GraphNet("root", 100.0, line, fanout=("a", "b")),
            GraphNet("a", 75.0, line, receiver_size=25.0),
            GraphNet("b", 75.0, line, receiver_size=25.0),
        ]
        graph = TimingGraph(nets, {"root": PrimaryInput(slew=ps(100))})
        graph.set_required("a", ps(400))
        graph.set_required("b", ps(300))
        report = self.engine(library, shared_solver).analyze(graph)
        root = report.events["root"]["rise"]
        a = report.events["a"]["fall"]
        b = report.events["b"]["fall"]
        assert root.required == min(ps(400) - a.solution.stage_delay,
                                    ps(300) - b.solution.stage_delay)


class TestGraphEdits:
    def chain(self, line):
        return parallel_chains(1, 3, lines=[line], input_slew=ps(100))

    def test_resize_dirties_net_and_fanin(self, line):
        graph = self.chain(line)
        graph.clear_dirty()
        graph.resize_driver("c0s1", 50.0)
        assert graph.dirty_nets == {"c0s0", "c0s1"}
        assert graph.nets["c0s1"].driver_size == 50.0

    def test_local_edits_dirty_only_their_net(self, line, fresh_diamond):
        fresh_diamond.clear_dirty()
        other = RLCLine(resistance=40.0, inductance=nH(2.0),
                        capacitance=pF(0.4), length=mm(2))
        fresh_diamond.set_line("a", other)
        fresh_diamond.set_extra_load("b", 1e-15)
        fresh_diamond.set_receiver("sink", 50.0)
        assert fresh_diamond.dirty_nets == {"a", "b", "sink"}
        fresh_diamond.clear_dirty()
        fresh_diamond.set_input("root", PrimaryInput(slew=ps(80)))
        assert fresh_diamond.dirty_nets == {"root"}

    def test_edit_validation(self, line, fresh_diamond):
        with pytest.raises(ModelingError):
            fresh_diamond.resize_driver("ghost", 50.0)
        with pytest.raises(ModelingError):
            fresh_diamond.resize_driver("a", -1.0)  # GraphNet still validates
        with pytest.raises(ModelingError):
            fresh_diamond.set_line("a", "not a line")
        with pytest.raises(ModelingError):
            fresh_diamond.set_input("a", PrimaryInput(slew=ps(100)))  # non-root
        with pytest.raises(ModelingError):
            fresh_diamond.set_receiver("sink", None)  # would float the sink

    def test_add_fanout_rejects_cycles_and_reverts(self, line):
        graph = self.chain(line)
        graph.clear_dirty()
        with pytest.raises(ModelingError, match="cycle"):
            graph.add_fanout("c0s2", "c0s1")
        # The failed edit left no trace: structure, levels and dirt unchanged.
        assert graph.nets["c0s2"].fanout == ()
        assert graph.fanin("c0s1") == ["c0s0"]
        assert graph.levels == [["c0s0"], ["c0s1"], ["c0s2"]]
        assert not graph.dirty_nets

    def test_add_fanout_rechains_structure(self, line):
        nets = [GraphNet("a", 75.0, line, receiver_size=50.0),
                GraphNet("b", 75.0, line, receiver_size=50.0)]
        graph = TimingGraph(nets, {"a": PrimaryInput(slew=ps(100)),
                                   "b": PrimaryInput(slew=ps(100))})
        with pytest.raises(ModelingError, match="primary input"):
            graph.add_fanout("a", "b")  # b is stimulated: cannot gain fanin
        nets = [GraphNet("a", 75.0, line, receiver_size=50.0),
                GraphNet("b", 75.0, line, fanout=("c",)),
                GraphNet("c", 75.0, line, receiver_size=50.0)]
        graph = TimingGraph(nets, {"a": PrimaryInput(slew=ps(100)),
                                   "b": PrimaryInput(slew=ps(100))})
        graph.clear_dirty()
        graph.add_fanout("a", "c")
        assert graph.fanin("c") == ["b", "a"]
        assert graph.dirty_nets == {"a", "c"}
        assert graph.levels == [["a", "b"], ["c"]]

    def test_fanout_cones(self, fresh_diamond):
        assert fresh_diamond.fanout_cone({"root"}) == set(fresh_diamond.nets)
        assert fresh_diamond.fanout_cone({"c"}) == {"c", "sink"}
        assert fresh_diamond.fanin_cone({"a"}) == {"a", "root"}
        assert fresh_diamond.endpoints == ["sink"]

    def test_report_keeps_its_snapshot_after_structural_edits(
            self, library, shared_solver, line):
        # A report must keep describing the state it analyzed even after the
        # (mutable) graph is edited: its sinks come from the events' snapshotted
        # nets, not from the live structure.
        nets = [GraphNet("a", 100.0, line, fanout=("b",)),
                GraphNet("b", 75.0, line, receiver_size=25.0),
                GraphNet("c", 25.0, line, receiver_size=125.0)]
        graph = TimingGraph(nets, {"a": PrimaryInput(slew=ps(100)),
                                   "c": PrimaryInput(slew=ps(100))})
        report = GraphEngine(library=library, solver=shared_solver).analyze(graph)
        worst = report.worst_event()
        assert worst.net.name == "c"  # the weak, heavily loaded driver
        graph.add_fanout("c", "b")  # c is no longer a sink of the live graph
        assert report.worst_event() is worst
        assert report.critical_path()[-1] is worst

    def test_cone_queries_validate_names(self, fresh_diamond):
        with pytest.raises(ModelingError, match="unknown net"):
            fresh_diamond.fanout_cone({"ghost"})
        with pytest.raises(ModelingError, match="unknown net"):
            fresh_diamond.fanin_cone(["sink", "ghost"])

    def test_remove_fanout_guards_orphans(self, line, fresh_diamond):
        with pytest.raises(ModelingError, match="does not drive"):
            fresh_diamond.remove_fanout("root", "sink")
        with pytest.raises(ModelingError, match="without a primary input"):
            fresh_diamond.remove_fanout("root", "a")  # a's only fanin
        fresh_diamond.clear_dirty()
        fresh_diamond.remove_fanout("c", "sink")  # sink keeps its fanin from a
        assert fresh_diamond.fanin("sink") == ["a"]
        assert fresh_diamond.dirty_nets == {"c", "sink"}
        # c became a receiver-less sink but stays analyzable.
        assert "c" in fresh_diamond.sinks
