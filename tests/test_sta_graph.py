"""Timing-graph subsystem: structure validation, levelization, batch analysis."""

import warnings

import pytest

from repro.core import StageSolver
from repro.errors import ModelingError
from repro.experiments import (fanout_tree, parallel_chains, reconvergent_graph)
from repro.interconnect import RLCLine
from repro.sta import (GraphNet, GraphTimer, PathTimer, PrimaryInput, TimingGraph,
                       TimingPath, TimingStage, chain_graph, flip_transition)
from repro.units import mm, nH, pF, ps


@pytest.fixture(scope="module")
def line():
    return RLCLine(resistance=20.0, inductance=nH(1.05), capacitance=pF(0.22),
                   length=mm(1))


@pytest.fixture(scope="module")
def diamond(line):
    nets = [
        GraphNet("root", 100.0, line, fanout=("a", "b")),
        GraphNet("a", 75.0, line, fanout=("sink",)),
        GraphNet("b", 75.0, line, fanout=("c",)),
        GraphNet("c", 75.0, line, fanout=("sink",)),
        GraphNet("sink", 50.0, line, receiver_size=25.0),
    ]
    return TimingGraph(nets, {"root": PrimaryInput(slew=ps(100))})


class TestStructure:
    def test_flip_transition(self):
        assert flip_transition("rise") == "fall"
        assert flip_transition("fall") == "rise"
        with pytest.raises(ModelingError):
            flip_transition("wiggle")

    def test_net_validation(self, line):
        with pytest.raises(ModelingError):
            GraphNet("", 75.0, line)
        with pytest.raises(ModelingError):
            GraphNet("n", 0.0, line)
        with pytest.raises(ModelingError):
            GraphNet("n", 75.0, line, receiver_size=-1.0)
        with pytest.raises(ModelingError):
            GraphNet("n", 75.0, line, extra_load=-1e-15)
        with pytest.raises(ModelingError):
            GraphNet("n", 75.0, line, fanout=("x", "x"))

    def test_graph_validation(self, line):
        with pytest.raises(ModelingError):
            TimingGraph([], {})
        with pytest.raises(ModelingError):  # duplicate name
            TimingGraph([GraphNet("n", 75.0, line), GraphNet("n", 50.0, line)],
                        {"n": PrimaryInput(slew=ps(100))})
        with pytest.raises(ModelingError):  # unknown fanout target
            TimingGraph([GraphNet("n", 75.0, line, fanout=("ghost",))],
                        {"n": PrimaryInput(slew=ps(100))})
        with pytest.raises(ModelingError):  # self loop
            TimingGraph([GraphNet("n", 75.0, line, fanout=("n",))],
                        {"n": PrimaryInput(slew=ps(100))})
        with pytest.raises(ModelingError):  # root without stimulus
            TimingGraph([GraphNet("n", 75.0, line)], {})
        with pytest.raises(ModelingError):  # stimulus on non-root
            TimingGraph([GraphNet("a", 75.0, line, fanout=("b",)),
                         GraphNet("b", 75.0, line)],
                        {"a": PrimaryInput(slew=ps(100)),
                         "b": PrimaryInput(slew=ps(100))})
        with pytest.raises(ModelingError):  # cycle
            TimingGraph([GraphNet("a", 75.0, line, fanout=("b",)),
                         GraphNet("b", 75.0, line, fanout=("a",))], {})

    def test_primary_input_validation(self):
        with pytest.raises(ModelingError):
            PrimaryInput(slew=0.0)
        with pytest.raises(ModelingError):
            PrimaryInput(slew=ps(100), transition="sideways")

    def test_levelization(self, diamond):
        assert diamond.levels == [["root"], ["a", "b"], ["c"], ["sink"]]
        assert diamond.n_levels == 4
        assert diamond.roots == ["root"]
        assert diamond.sinks == ["sink"]
        assert diamond.fanin("sink") == ["a", "c"]
        assert len(diamond) == 5
        assert "root" in diamond and "ghost" not in diamond
        assert "5 nets" in diamond.describe()

    def test_chain_graph_name_collision(self, line):
        # A literal "s#1" stage must not collide with the uniquified duplicate.
        path = TimingPath("p", [
            TimingStage("s", driver_size=75, line=line, receiver_size=75),
            TimingStage("s#1", driver_size=75, line=line, receiver_size=75),
            TimingStage("s", driver_size=75, line=line, receiver_size=50),
        ], input_slew=ps(100))
        graph, names = chain_graph(path)
        assert len(set(names)) == 3
        assert names[0] == "s" and names[1] == "s#1"

    def test_chain_graph_shape(self, line):
        path = TimingPath("p", [
            TimingStage("s", driver_size=75, line=line, receiver_size=100),
            TimingStage("s", driver_size=100, line=line, receiver_size=50),
        ], input_slew=ps(100))
        graph, names = chain_graph(path)
        assert names == ["s", "s#1"]  # duplicate stage names are uniquified
        assert graph.levels == [["s"], ["s#1"]]
        assert graph.nets["s"].fanout == ("s#1",)
        assert graph.nets["s"].receiver_size is None
        assert graph.nets["s#1"].receiver_size == 50


class TestLoadsAndMerging:
    def test_fanout_load_matches_stage_load(self, line, library, tech):
        # A chain net's gate load (from its fanout driver) must be bit-identical
        # to the single-path engine's receiver load for the same stage.
        path = TimingPath("p", [
            TimingStage("s1", driver_size=75, line=line, receiver_size=100),
            TimingStage("s2", driver_size=100, line=line, receiver_size=50),
        ], input_slew=ps(100))
        timer = PathTimer(library=library, tech=tech)
        graph, names = chain_graph(path)
        graph_timer = timer._graph_timer
        for stage, name in zip(path.stage_list, names):
            assert graph_timer.net_load(graph, graph.nets[name]) == \
                timer._stage_load(stage)

    def test_fanout_load_sums_every_receiver(self, line, library, tech):
        nets = [GraphNet("n", 75.0, line, fanout=("x", "y"), receiver_size=25.0,
                         extra_load=2e-15),
                GraphNet("x", 100.0, line), GraphNet("y", 50.0, line)]
        graph = TimingGraph(nets, {"n": PrimaryInput(slew=ps(100))})
        timer = GraphTimer(library=library, tech=tech)
        expected = (2e-15 + tech.inverter_input_capacitance(100)
                    + tech.inverter_input_capacitance(50)
                    + tech.inverter_input_capacitance(25))
        assert timer.net_load(graph, graph.nets["n"]) == expected

    def test_worst_arrival_merge_wins(self, line, library):
        # sink's fanins have the same parity but different depth, so the longer
        # branch must set the merged arrival and the traceback source.
        nets = [
            GraphNet("root", 100.0, line, fanout=("fast", "slow_a")),
            GraphNet("fast", 75.0, line, fanout=("mid",)),
            GraphNet("mid", 75.0, line, fanout=("sink",)),
            GraphNet("slow_a", 25.0, line, fanout=("slow_b",)),
            GraphNet("slow_b", 25.0, line, fanout=("sink",)),
            GraphNet("sink", 50.0, line, receiver_size=25.0),
        ]
        graph = TimingGraph(nets, {"root": PrimaryInput(slew=ps(100))})
        report = GraphTimer(library=library).analyze(graph)
        sink_events = report.events["sink"]
        assert set(sink_events) == {"fall"}  # equal parity: one transition
        event = sink_events["fall"]
        slow = report.events["slow_b"]["rise"]
        mid = report.events["mid"]["rise"]
        assert event.input_arrival == max(slow.output_arrival, mid.output_arrival)
        winner = "slow_b" if slow.output_arrival > mid.output_arrival else "mid"
        assert event.source == (winner, "rise")

    def test_reconvergent_graph_times_both_transitions(self, library):
        report = GraphTimer(library=library).analyze(reconvergent_graph())
        sink = report.events["sink"]
        assert set(sink) == {"rise", "fall"}
        assert report.n_events == len(report.graph) + 1
        # Traceback from the worst sink event reaches the primary input.
        path = report.critical_path()
        assert path[0].net.name == "root"
        assert path[0].source is None
        assert path[-1].net.name == "sink"
        arrivals = [event.output_arrival for event in path]
        assert arrivals == sorted(arrivals)


class TestGraphTimer:
    def test_rejects_non_graph(self, library):
        with pytest.raises(ModelingError):
            GraphTimer(library=library).analyze("not a graph")

    def test_report_queries_and_formatting(self, library, diamond):
        report = GraphTimer(library=library).analyze(diamond)
        assert report.arrival("sink") == report.worst_event().output_arrival
        assert report.arrival("sink", "fall") == \
            report.events["sink"]["fall"].output_arrival
        with pytest.raises(ModelingError):
            report.event("ghost")
        with pytest.raises(ModelingError):
            report.event("root", "fall")  # the PI rises, so no fall event
        text = report.format_report()
        assert "cache hit rate" in text
        assert "critical path" in text

    def test_memoization_across_repeated_chains(self, library, line):
        # One line flavor -> the 6 chains are bit-identical.
        graph = parallel_chains(6, 3, lines=[line], input_slew=ps(100))
        solver = StageSolver()
        report = GraphTimer(library=library, solver=solver).analyze(graph)
        # 6 identical chains share one chain's worth of unique stage solves.
        assert report.stats.computed == 3
        assert report.stats.memo_hits == 15
        assert report.stats.hit_rate == pytest.approx(15 / 18)
        arrivals = {report.arrival(name) for name in graph.sinks}
        assert len(arrivals) == 1  # identical chains, identical arrivals

    def test_fanout_tree_analysis(self, library):
        graph = fanout_tree(3)
        report = GraphTimer(library=library).analyze(graph)
        assert report.n_events == len(graph) == 15
        # Every level deeper arrives strictly later.
        assert report.arrival("t") < report.arrival("t.0") < \
            report.arrival("t.0.0") < report.arrival("t.0.0.0")

    def test_parallel_jobs_respect_slew_quantum(self, library, line):
        # Workers must solve at the quantized slew the fingerprint was built
        # from, or parallel runs would poison the memo with off-grid results.
        graph = parallel_chains(2, 2, lines=[line], input_slew=ps(100.3))
        quantum = ps(5.0)
        serial = GraphTimer(library=library,
                            solver=StageSolver(slew_quantum=quantum)).analyze(graph)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            parallel = GraphTimer(library=library,
                                  solver=StageSolver(slew_quantum=quantum),
                                  jobs=2).analyze(graph)
        for name in graph.nets:
            for transition, event in serial.events[name].items():
                other = parallel.events[name][transition]
                assert event.input_slew == other.input_slew
                assert event.output_arrival == other.output_arrival

    def test_parallel_jobs_match_serial(self, library):
        graph = parallel_chains(4, 2, input_slew=ps(100))
        serial = GraphTimer(library=library).analyze(graph)
        with warnings.catch_warnings():
            # In sandboxed environments the pool may fall back to serial; the
            # results must be identical either way.
            warnings.simplefilter("ignore", RuntimeWarning)
            parallel = GraphTimer(library=library, jobs=2).analyze(graph)
        for name in graph.nets:
            for transition, event in serial.events[name].items():
                other = parallel.events[name][transition]
                assert event.output_arrival == other.output_arrival
                assert event.input_slew == other.input_slew
                assert event.solution.far_slew == other.solution.far_slew
