"""Transient engine with MOSFETs: inverter switching, Newton paths, consistency."""

import numpy as np
import pytest

from repro.circuit import Circuit, RampSource, TransientOptions, run_transient
from repro.tech import InverterSpec, add_inverter, generic_180nm
from repro.units import ps, to_ps


@pytest.fixture(scope="module")
def tech_module():
    return generic_180nm()


def inverter_with_cap(tech, size, load, input_slew, *, rising_output=True):
    circuit = Circuit()
    circuit.voltage_source("vdd", "0", tech.vdd, name="Vdd")
    if rising_output:
        stimulus = RampSource(tech.vdd, 0.0, input_slew, t_delay=ps(20))
    else:
        stimulus = RampSource(0.0, tech.vdd, input_slew, t_delay=ps(20))
    circuit.voltage_source("in", "0", stimulus, name="Vin")
    add_inverter(circuit, InverterSpec(tech=tech, size=size), "in", "out")
    circuit.capacitor("out", "0", load, name="Cload")
    return circuit


class TestInverterSwitching:
    def test_rising_output_reaches_rails(self, tech_module):
        circuit = inverter_with_cap(tech_module, 20, 200e-15, ps(100))
        result = run_transient(circuit, ps(800), dt=ps(0.5))
        wave = result.waveform("out")
        assert wave.values[0] == pytest.approx(0.0, abs=0.01)
        assert wave.v_final == pytest.approx(tech_module.vdd, abs=0.01)

    def test_falling_output_reaches_rails(self, tech_module):
        circuit = inverter_with_cap(tech_module, 20, 200e-15, ps(100),
                                    rising_output=False)
        result = run_transient(circuit, ps(800), dt=ps(0.5))
        wave = result.waveform("out")
        assert wave.values[0] == pytest.approx(tech_module.vdd, abs=0.01)
        assert wave.v_final == pytest.approx(0.0, abs=0.01)

    def test_larger_driver_switches_faster(self, tech_module):
        slow = inverter_with_cap(tech_module, 10, 500e-15, ps(50))
        fast = inverter_with_cap(tech_module, 80, 500e-15, ps(50))
        slew_slow = run_transient(slow, ps(2000), dt=ps(0.5)).waveform("out").slew(1.8)
        slew_fast = run_transient(fast, ps(2000), dt=ps(0.5)).waveform("out").slew(1.8)
        assert slew_fast < 0.5 * slew_slow

    def test_larger_load_switches_slower(self, tech_module):
        light = inverter_with_cap(tech_module, 40, 100e-15, ps(50))
        heavy = inverter_with_cap(tech_module, 40, 800e-15, ps(50))
        slew_light = run_transient(light, ps(2500), dt=ps(0.5)).waveform("out").slew(1.8)
        slew_heavy = run_transient(heavy, ps(2500), dt=ps(0.5)).waveform("out").slew(1.8)
        assert slew_heavy > 2.0 * slew_light

    def test_step_size_convergence(self, tech_module):
        """Halving the time step changes the measured delay by well under a percent."""
        coarse_circuit = inverter_with_cap(tech_module, 40, 300e-15, ps(80))
        fine_circuit = inverter_with_cap(tech_module, 40, 300e-15, ps(80))
        coarse = run_transient(coarse_circuit, ps(600), dt=ps(0.4)).waveform("out")
        fine = run_transient(fine_circuit, ps(600), dt=ps(0.2)).waveform("out")
        t_coarse = coarse.time_at_level(0.9, rising=True)
        t_fine = fine.time_at_level(0.9, rising=True)
        assert to_ps(abs(t_coarse - t_fine)) < 1.0


class TestNewtonPaths:
    def test_woodbury_and_full_refactor_agree(self, tech_module):
        """The low-rank Newton path must match the brute-force re-factorization path."""
        from repro.circuit.transient import _TransientEngine

        circuit = inverter_with_cap(tech_module, 30, 250e-15, ps(60))
        options = TransientOptions(dt=ps(0.5))
        reference = run_transient(circuit, ps(400), options=options).waveform("out")

        circuit2 = inverter_with_cap(tech_module, 30, 250e-15, ps(60))
        engine = _TransientEngine(circuit2, options)
        engine._woodbury_ready = False  # force the full-refactorization fallback
        fallback = engine.run(ps(400)).waveform("out")
        assert reference.max_abs_difference(fallback) < 1e-6

    def test_energy_sanity_output_between_rails(self, tech_module):
        circuit = inverter_with_cap(tech_module, 60, 400e-15, ps(40))
        result = run_transient(circuit, ps(600), dt=ps(0.25))
        wave = result.waveform("out")
        assert wave.v_min > -0.2
        assert wave.v_max < tech_module.vdd + 0.2

    def test_supply_current_flows_during_transition_only(self, tech_module):
        circuit = inverter_with_cap(tech_module, 40, 300e-15, ps(50))
        result = run_transient(circuit, ps(800), dt=ps(0.5))
        supply_current = result.source_delivered_current("Vdd")
        # Quiescent at the start and end, active in between.
        assert abs(supply_current[2]) < 1e-5
        assert abs(supply_current[-1]) < 1e-5
        assert np.max(np.abs(supply_current)) > 1e-4
