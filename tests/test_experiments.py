"""Experiment harness: paper cases, reference simulator, comparisons, sweeps."""

import pytest

from repro.experiments import (FIGURE1_CASE, FIGURE3_CASE, FIGURE5_CASES,
                               FIGURE6_FAR_END_CASE, FIGURE6_SINGLE_RAMP_CASE,
                               TABLE1_CASES, CaseComparison, SweepDefinition,
                               build_sweep_cases, figure4_two_ramp_construction,
                               find_table1_row, run_accuracy_sweep, run_table1)
from repro.experiments.reference import ReferenceSimulator
from repro.units import ps, to_ps


class TestPaperCases:
    def test_table1_has_fifteen_rows(self):
        assert len(TABLE1_CASES) == 15

    def test_printed_parasitics_are_loaded_verbatim(self):
        row = find_table1_row(5, 1.6)
        assert row is not None
        line = row.case.line
        assert line.resistance == pytest.approx(72.4)
        assert line.inductance == pytest.approx(5.1e-9)
        assert line.capacitance == pytest.approx(1.11e-12)
        assert row.paper_hspice_delay_ps == pytest.approx(39.56)
        assert row.paper_one_ramp_slew_error_pct == pytest.approx(-64.1)

    def test_unknown_row_returns_none(self):
        assert find_table1_row(9, 9.9) is None

    def test_case_helpers(self):
        case = FIGURE1_CASE
        assert case.input_slew == pytest.approx(ps(100))
        assert case.load_capacitance == 0.0
        assert case.width == pytest.approx(1.6e-6)
        assert "5mm" in case.describe()

    def test_figure_cases_match_printed_captions(self):
        assert FIGURE3_CASE.resistance_ohm == pytest.approx(101.3)
        assert FIGURE5_CASES[0].input_slew_ps == 75
        assert FIGURE6_SINGLE_RAMP_CASE.driver_size == 25
        assert FIGURE6_FAR_END_CASE.width_um == pytest.approx(0.8)

    def test_all_table1_drivers_are_in_shipped_library(self, library):
        for row in TABLE1_CASES:
            assert row.case.driver_size in library

    def test_paper_error_pattern_in_recorded_numbers(self):
        """The printed one-ramp errors are positive for delay, negative for slew."""
        for row in TABLE1_CASES:
            assert row.paper_one_ramp_delay_error_pct > 0
            assert row.paper_one_ramp_slew_error_pct < 0
            assert abs(row.paper_two_ramp_delay_error_pct) <= 10


class TestReferenceSimulator:
    def test_results_are_cached(self, reference_simulator, fig1_reference):
        again = reference_simulator.simulate_case(FIGURE1_CASE)
        assert again is fig1_reference

    def test_fig1_waveform_shows_inductive_signature(self, fig1_reference):
        """The reference simulation reproduces Figure 1: a step of roughly the
        breakpoint height followed by a plateau before the reflection returns."""
        step = fig1_reference.initial_step_fraction()
        assert 0.45 < step < 0.85
        # The near end eventually settles at the supply.
        assert fig1_reference.near.v_final == pytest.approx(fig1_reference.vdd, rel=0.02)

    def test_fig1_far_end_lags_by_at_least_the_flight_time(self, fig1_reference):
        lag = fig1_reference.far_delay() - fig1_reference.near_delay()
        assert lag > 0.8 * FIGURE1_CASE.line.time_of_flight

    def test_weak_driver_shows_no_step(self, fig6_weak_reference):
        assert fig6_weak_reference.initial_step_fraction() < 0.45

    def test_invalid_transition_rejected(self, reference_simulator, line_3mm):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            reference_simulator.simulate(75, ps(50), line_3mm, transition="both")

    def test_clear_cache(self, line_3mm):
        simulator = ReferenceSimulator()
        assert len(simulator._cache) == 0
        simulator.clear_cache()
        assert len(simulator._cache) == 0


class TestComparisonAndTable1:
    @pytest.fixture(scope="class")
    def single_row_result(self, library, reference_simulator):
        row = TABLE1_CASES[1]  # 3 mm / 1.2 um / 75X
        return run_table1(rows=[row], library=library, simulator=reference_simulator)

    def test_two_ramp_beats_one_ramp(self, single_row_result):
        comparison = single_row_result.comparisons[0]
        assert abs(comparison.two_ramp_delay_error) < abs(comparison.one_ramp_delay_error)
        assert abs(comparison.two_ramp_slew_error) < abs(comparison.one_ramp_slew_error)

    def test_error_signs_match_paper_pattern(self, single_row_result):
        comparison = single_row_result.comparisons[0]
        assert comparison.one_ramp_delay_error > 15.0
        assert comparison.one_ramp_slew_error < -10.0
        assert abs(comparison.two_ramp_delay_error) < 15.0

    def test_report_formatting(self, single_row_result):
        text = single_row_result.format_report()
        assert "Table 1 reproduction" in text
        assert "paper:" in text
        assert "two-ramp delay error" in text

    def test_summaries_have_one_entry(self, single_row_result):
        assert single_row_result.two_ramp_delay_summary.count == 1
        assert single_row_result.one_ramp_slew_summary.count == 1

    def test_comparison_header_and_row_align(self, single_row_result):
        comparison = single_row_result.comparisons[0]
        assert "2ramp_d" in CaseComparison.header()
        assert "%" in comparison.format_row()


class TestSweep:
    def test_build_sweep_cases_extracts_parasitics(self):
        definition = SweepDefinition(lengths_mm=(3.0,), widths_um=(1.6,),
                                     driver_sizes=(75.0,), input_slews_ps=(100.0,))
        cases = build_sweep_cases(definition)
        assert len(cases) == 1
        case = cases[0]
        assert case.resistance_ohm == pytest.approx(43.5, rel=0.2)
        assert case.capacitance_pf == pytest.approx(0.66, rel=0.25)

    def test_subset_and_full_definitions(self):
        assert SweepDefinition.subset().case_count() < SweepDefinition.full().case_count()
        assert SweepDefinition.full().case_count() >= 150

    def test_single_case_sweep(self, library, reference_simulator):
        definition = SweepDefinition(lengths_mm=(5.0,), widths_um=(1.6,),
                                     driver_sizes=(75.0,), input_slews_ps=(100.0,))
        result = run_accuracy_sweep(definition=definition, library=library,
                                    simulator=reference_simulator)
        assert len(result.comparisons) + result.skipped_non_inductive == 1
        if result.comparisons:
            assert result.delay_summary.mean_abs_error < 25.0
            points = result.scatter_points()
            assert len(points[0]) == 4
        assert "Accuracy sweep" in result.format_report()

    def test_non_inductive_cases_are_screened_out(self, library, reference_simulator):
        definition = SweepDefinition(lengths_mm=(1.0,), widths_um=(0.8,),
                                     driver_sizes=(75.0,), input_slews_ps=(200.0,))
        result = run_accuracy_sweep(definition=definition, library=library,
                                    simulator=reference_simulator)
        assert result.skipped_non_inductive == 1
        assert len(result.comparisons) == 0


class TestFigureGenerators:
    def test_figure4_construction_without_simulation(self, library):
        result = figure4_two_ramp_construction(library=library)
        assert result.model.is_two_ramp
        assert result.model.tr2_effective >= result.model.tr2
        assert "Eq. 8" in result.format_report()
