"""The repro.api front door: session, config, builder, unified report.

The acceptance-critical parts live here:

* ``TimingSession.time(...)`` reproduces ``PathTimer.analyze`` and
  ``GraphTimer.analyze`` bit-identically on the PR-2 graph workloads,
* ``TimingReport`` JSON round-trips losslessly and serializes stably across
  runs (rise/fall event ordering included), and
* the old entry points keep working while emitting ``DeprecationWarning``.
"""

import warnings

import pytest

from repro.api import DesignBuilder, SessionConfig, TimingReport, TimingSession
from repro.core.driver_model import ModelingOptions
from repro.errors import ModelingError
from repro.experiments import parallel_chains, reconvergent_graph
from repro.interconnect import RLCLine
from repro.sta import GraphTimer, PathTimer, TimingPath, TimingStage
from repro.sta._deprecation import reset_deprecation_warnings
from repro.sta.batch import GraphEngine
from repro.units import mm, nH, pF, ps


@pytest.fixture(scope="module")
def line():
    return RLCLine(resistance=20.0, inductance=nH(1.05), capacitance=pF(0.22),
                   length=mm(1))


@pytest.fixture(scope="module")
def four_stage_path(line):
    return TimingPath("four", [
        TimingStage("s1", driver_size=75, line=line, receiver_size=100),
        TimingStage("s2", driver_size=100, line=line, receiver_size=75),
        TimingStage("s3", driver_size=75, line=line, receiver_size=100),
        TimingStage("s4", driver_size=100, line=line, receiver_size=50),
    ], input_slew=ps(100))


@pytest.fixture(scope="module")
def session(library):
    with TimingSession() as active:
        yield active


def legacy_path_timer(**kwargs):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return PathTimer(**kwargs)


def legacy_graph_timer(**kwargs):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return GraphTimer(**kwargs)


class TestSessionConfig:
    def test_validation(self):
        with pytest.raises(ModelingError):
            SessionConfig(jobs=0)
        with pytest.raises(ModelingError):
            SessionConfig(memo_size=-1)
        with pytest.raises(ModelingError):
            SessionConfig(slew_quantum=0.0)
        with pytest.raises(ModelingError):
            SessionConfig(slew_low=0.8, slew_high=0.2)
        with pytest.raises(ModelingError):
            SessionConfig(options="not options")

    def test_replace_revalidates(self):
        config = SessionConfig()
        assert config.replace(jobs=4).jobs == 4
        with pytest.raises(ModelingError):
            config.replace(jobs=-1)

    def test_from_env_reads_documented_variables(self, tmp_path):
        environ = {"REPRO_CACHE_DIR": str(tmp_path), "REPRO_JOBS": "3",
                   "REPRO_PERSISTENT_STAGES": "1"}
        config = SessionConfig.from_env(environ)
        assert config.cache_dir == tmp_path
        assert config.jobs == 3
        assert config.persistent_stages is True

    def test_from_env_overrides_win(self, tmp_path):
        environ = {"REPRO_JOBS": "3"}
        assert SessionConfig.from_env(environ, jobs=2).jobs == 2

    def test_from_env_zero_jobs_means_cpu_count(self):
        assert SessionConfig.from_env({"REPRO_JOBS": "0"}).jobs >= 1

    def test_from_env_rejects_bad_jobs(self):
        with pytest.raises(ModelingError):
            SessionConfig.from_env({"REPRO_JOBS": "many"})

    def test_from_env_compile_threshold(self):
        assert SessionConfig.from_env(
            {"REPRO_COMPILE_THRESHOLD": "512"}).compile_threshold == 512
        # 0 disables compilation entirely (the documented sentinel).
        assert SessionConfig.from_env(
            {"REPRO_COMPILE_THRESHOLD": "0"}).compile_threshold is None
        assert SessionConfig.from_env({}).compile_threshold == 4096
        assert SessionConfig.from_env(
            {"REPRO_COMPILE_THRESHOLD": "512"},
            compile_threshold=64).compile_threshold == 64

    def test_from_env_rejects_bad_compile_threshold(self):
        with pytest.raises(ModelingError):
            SessionConfig.from_env({"REPRO_COMPILE_THRESHOLD": "lots"})
        with pytest.raises(ModelingError):
            SessionConfig.from_env({"REPRO_COMPILE_THRESHOLD": "-3"})

    def test_from_env_compile_threshold_serializes(self):
        config = SessionConfig.from_env({"REPRO_COMPILE_THRESHOLD": "512"})
        assert SessionConfig.from_dict(config.to_dict()) == config

    def test_dict_round_trip(self, tmp_path):
        config = SessionConfig(cache_dir=tmp_path, jobs=2, slew_quantum=ps(1.0),
                               persistent_stages=True)
        assert SessionConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ModelingError):
            SessionConfig.from_dict({"warp_speed": 9})


class TestDesignBuilder:
    def test_fluent_graph_construction(self, line):
        graph = (DesignBuilder("d")
                 .net("root", driver_size=100, line=line)
                 .net("leaf", driver_size=50, line=line, receiver_size=25)
                 .connect("root", "leaf")
                 .input("root", ps(100))
                 .build())
        assert graph.nets["root"].fanout == ("leaf",)
        assert graph.levels == [["root"], ["leaf"]]

    def test_chain_builds_linear_route(self, line):
        builder = DesignBuilder("d").chain(
            "c", sizes=(75, 100, 75), line=line, input_slew=ps(100),
            receiver_size=50)
        graph = builder.build()
        assert builder.net_names == ("c_s0", "c_s1", "c_s2")
        assert graph.nets["c_s0"].fanout == ("c_s1",)
        assert graph.nets["c_s2"].receiver_size == 50
        assert graph.primary_inputs["c_s0"].slew == ps(100)

    def test_chain_cycles_line_flavors(self, line):
        other = RLCLine(resistance=40.0, inductance=nH(2.0),
                        capacitance=pF(0.4), length=mm(2))
        graph = (DesignBuilder("d")
                 .chain("c", sizes=(75, 75, 75), line=[line, other],
                        input_slew=ps(100))
                 .build())
        assert graph.nets["c_s0"].line is line
        assert graph.nets["c_s1"].line is other
        assert graph.nets["c_s2"].line is line

    def test_duplicate_nets_and_inputs_rejected(self, line):
        builder = DesignBuilder("d").net("n", driver_size=75, line=line)
        with pytest.raises(ModelingError):
            builder.net("n", driver_size=50, line=line)
        builder.input("n", ps(100))
        with pytest.raises(ModelingError):
            builder.input("n", ps(50))

    def test_connect_requires_declared_driver(self, line):
        with pytest.raises(ModelingError):
            DesignBuilder("d").connect("ghost", "x")
        with pytest.raises(ModelingError):
            DesignBuilder("d").net("n", driver_size=75, line=line).connect("n")

    def test_build_validates_structure(self, line):
        builder = (DesignBuilder("d")
                   .net("n", driver_size=75, line=line, fanout=("ghost",))
                   .input("n", ps(100)))
        with pytest.raises(ModelingError):
            builder.build()

    def test_builder_reusable_after_build(self, line):
        builder = DesignBuilder("d").chain("c", sizes=(75,), line=line,
                                           input_slew=ps(100))
        first = builder.build()
        builder.net("tap", driver_size=50, line=line).connect("c_s0", "tap")
        second = builder.build()
        assert len(first) == 1 and len(second) == 2


class TestSessionEquivalence:
    """Acceptance: session results are bit-identical to the legacy entry points."""

    def test_session_matches_path_timer_exactly(self, session, library,
                                                four_stage_path):
        report = session.time(four_stage_path)
        assert report.kind == "path"
        legacy = legacy_path_timer(library=library).analyze(four_stage_path)
        assert len(report.critical_path) == len(legacy.stages)
        for (name, transition), stage in zip(report.critical_path,
                                             legacy.stages):
            event = report.events[name][transition]
            assert event.input_slew == stage.input_slew
            assert event.gate_delay == stage.gate_delay
            assert event.interconnect_delay == stage.interconnect_delay
            assert event.far_slew == stage.output_slew
        assert report.total_delay == sum(s.stage_delay for s in legacy.stages)
        assert report.output_slew == legacy.output_slew

    @pytest.mark.parametrize("case", ["chains", "diamond"])
    def test_session_matches_graph_timer_exactly(self, session, library, line,
                                                 case):
        if case == "chains":
            graph = parallel_chains(3, 2, lines=[line], input_slew=ps(100))
        else:
            graph = reconvergent_graph(line=line)
        report = session.time(graph, name=case)
        legacy = legacy_graph_timer(library=library).analyze(graph)
        assert report.n_events == legacy.n_events
        for name, per_net in legacy.events.items():
            for transition, event in per_net.items():
                ours = report.events[name][transition]
                assert ours.input_arrival == event.input_arrival
                assert ours.output_arrival == event.output_arrival
                assert ours.input_slew == event.input_slew
                assert ours.far_slew == event.solution.far_slew
                assert ours.source == event.source
        legacy_critical = [(e.net.name, e.input_transition)
                           for e in legacy.critical_path()]
        assert report.critical_path == legacy_critical

    def test_builder_and_graph_agree(self, session, line):
        graph = parallel_chains(1, 2, lines=[line], sizes=(75.0, 100.0),
                                terminal_size=50.0, input_slew=ps(100))
        builder = DesignBuilder("one_chain").chain(
            "c", sizes=(75, 100), line=line, input_slew=ps(100),
            receiver_size=50)
        from_builder = session.time(builder)
        from_graph = session.time(graph)
        assert from_builder.total_delay == from_graph.total_delay

    def test_time_rejects_unknown_designs(self, session):
        with pytest.raises(ModelingError):
            session.time("not a design")


class TestDeprecatedShims:
    def test_path_timer_warns_but_works(self, library, four_stage_path):
        reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning, match="TimingSession"):
            timer = PathTimer(library=library)
        assert timer.analyze(four_stage_path).total_delay > 0

    def test_graph_timer_warns_but_works(self, library, line):
        reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning, match="TimingSession"):
            timer = GraphTimer(library=library)
        report = timer.analyze(reconvergent_graph(line=line))
        assert report.n_events == 6

    def test_shims_warn_once_per_process(self, library):
        # Constructing shims in a loop must not spam one warning per iteration.
        reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning):
            GraphTimer(library=library)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            for _ in range(3):
                GraphTimer(library=library)

    def test_warning_points_at_the_constructing_line(self, library):
        reset_deprecation_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always", DeprecationWarning)
            GraphTimer(library=library)  # the line the warning must blame
        (record,) = caught
        assert record.filename == __file__

    def test_graph_engine_does_not_warn(self, library):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            GraphEngine(library=library)


class TestContextManagers:
    def test_engine_pool_closed_on_exit(self, library, line):
        engine = GraphEngine(library=library, jobs=2)
        graph = parallel_chains(2, 1, lines=[line], input_slew=ps(100))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with engine:
                engine.analyze(graph)
                pooled = engine._executor  # may be None if fork is unavailable
            assert engine._executor is None
            # Unmanaged analyses clean up after themselves.
            engine.analyze(graph)
            assert engine._executor is None
        engine.close()  # idempotent
        del pooled

    def test_characterization_runner_context(self):
        from repro.characterization import CharacterizationRunner
        with CharacterizationRunner(jobs=1) as runner:
            assert runner.jobs == 1
        runner.close()  # idempotent

    def test_session_close_is_idempotent_and_reusable(self, library, line,
                                                      four_stage_path):
        session = TimingSession()
        session.close()
        assert session.closed
        session.close()
        report = session.time(four_stage_path)  # usable again after close
        assert report.total_delay > 0
        assert not session.closed
        session.close()

    def test_session_shares_memo_across_analyses(self, library,
                                                 four_stage_path):
        with TimingSession() as fresh:
            fresh.time(four_stage_path)
            computed = fresh.stats.computed
            fresh.time(four_stage_path)
            assert fresh.stats.computed == computed
            assert fresh.stats.memo_hits >= len(four_stage_path)


class TestSessionResources:
    def test_default_session_shares_process_library(self, library):
        assert TimingSession().library is library

    def test_explicit_cache_dir_builds_private_library(self, tmp_path, library):
        session = TimingSession(cache_dir=tmp_path)
        assert session.library is not library
        assert set(session.library.sizes) == set(library.sizes)

    def test_custom_grid_characterization_not_registered(self, tmp_path):
        # A non-standard (here: tiny) grid must never enter the session's
        # library — with the default config that library is the process-shared
        # default_library(), and a coarse cell would degrade everyone's timing.
        from repro.characterization import CharacterizationGrid
        from repro.units import fF
        tiny = CharacterizationGrid(input_slews=(ps(50), ps(150)),
                                    loads=(fF(30), fF(150)))
        with TimingSession(cache_dir=tmp_path) as fresh:
            (cell,) = fresh.characterize(60, grid=tiny)
        assert cell.driver_size == 60
        assert 60.0 not in fresh.library

    def test_unmanaged_session_cleans_up_pool_per_call(self, library, line):
        graph = parallel_chains(2, 1, lines=[line], input_slew=ps(100))
        unmanaged = TimingSession(jobs=2)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            unmanaged.time(graph)
        assert unmanaged._engine._executor is None  # no leak without close()

    def test_persistent_stages_land_in_cache_dir(self, tmp_path, line):
        config = SessionConfig(cache_dir=tmp_path, persistent_stages=True)
        with TimingSession(config) as session:
            path = TimingPath("p", [TimingStage("s", 75, line)],
                              input_slew=ps(100))
            session.time(path)
        stage_files = list((tmp_path / "stages").glob("*.json"))
        assert len(stage_files) == 1

    def test_describe_mentions_resources(self, session):
        text = session.describe()
        assert "timing session" in text
        assert "library" in text


class TestIncrementalSession:
    def test_update_attaches_then_retimes_dirty_cone(self, library, line):
        graph = parallel_chains(2, 3, lines=[line], input_slew=ps(100))
        with TimingSession() as session:
            first = session.update(graph)
            assert first.meta.retimed_nets == len(graph)
            graph.resize_driver("c0s2", 50.0)
            second = session.update()  # design defaults to the attached graph
            # Chain 0's tail was edited; chain 1 must not be re-timed.
            assert second.meta.dirty_nets == 2  # the net + its fanin
            assert second.meta.retimed_nets < len(graph)
            full = session.time(graph)
            for name, per_net in full.events.items():
                for transition, event in per_net.items():
                    ours = second.events[name][transition]
                    assert ours.output_arrival == event.output_arrival
                    assert ours.input_slew == event.input_slew
                    assert ours.source == event.source

    def test_update_reflects_constraint_edits_without_solves(self, library,
                                                             line):
        graph = parallel_chains(1, 2, lines=[line], input_slew=ps(100))
        with TimingSession() as session:
            session.update(graph)
            computed = session.stats.computed
            graph.set_clock_period(ps(500))
            report = session.update()
            assert session.stats.computed == computed  # arithmetic only
            assert report.wns == 0.0
            assert report.worst_slack == pytest.approx(
                ps(500) - report.total_delay)

    def test_update_rejects_builders_and_non_graphs(self, library, line):
        with TimingSession() as session:
            with pytest.raises(ModelingError, match="update"):
                session.update()
            builder = DesignBuilder("d").chain("c", sizes=(75,), line=line,
                                               input_slew=ps(100))
            with pytest.raises(ModelingError, match="built graph|build"):
                session.update(builder)
            with pytest.raises(ModelingError):
                session.update("not a graph")

    def test_update_reattaches_to_a_new_graph(self, library, line):
        first_graph = parallel_chains(1, 2, lines=[line], input_slew=ps(100))
        second_graph = reconvergent_graph(line=line)
        with TimingSession() as session:
            session.update(first_graph)
            report = session.update(second_graph)
            assert set(report.events) == set(second_graph.nets)


class TestDualModeSession:
    def test_config_mode_is_validated_and_serialized(self):
        assert SessionConfig().mode == "both"
        with pytest.raises(ModelingError, match="mode"):
            SessionConfig(mode="race")
        config = SessionConfig(mode="setup")
        assert SessionConfig.from_dict(config.to_dict()) == config
        assert "mode=setup" in config.describe()

    def test_config_mode_sets_the_session_default(self, library, line):
        graph = reconvergent_graph(line=line)
        graph.set_clock_period(ps(600), hold_margin=ps(100))
        with TimingSession(mode="setup") as session:
            report = session.time(graph)
            assert report.meta.mode == "setup"
            assert report.constrained and not report.hold_constrained
            # A per-call mode overrides the configured default.
            dual = session.time(graph, mode="both")
            assert dual.hold_constrained and dual.whs is not None
            with pytest.raises(ModelingError, match="mode"):
                session.time(graph, mode="race")

    def test_builder_hold_constraints_flow_through(self, library, line):
        builder = (DesignBuilder("held")
                   .chain("c", sizes=(75, 100), line=line,
                          input_slew=ps(100), receiver_size=50)
                   .clock(ps(700), hold_margin=ps(60))
                   .require("c_s1", ps(90), mode="hold"))
        with pytest.raises(ModelingError, match="mode"):
            builder.require("c_s1", ps(90), mode="race")
        with pytest.raises(ModelingError, match="hold margin"):
            DesignBuilder("bad").clock(ps(700), hold_margin=-ps(1))
        with TimingSession() as session:
            report = session.time(builder)
        assert report.design == "held"
        assert report.wns is not None and report.whs is not None
        event = report.worst_slack_event(mode="hold")
        assert event.hold_required == ps(90)  # the pin beats the margin

    def test_update_carries_the_hold_plane(self, library, line):
        graph = parallel_chains(2, 3, lines=[line], input_slew=ps(100))
        graph.set_clock_period(ps(700), hold_margin=ps(40))
        with TimingSession() as session:
            first = session.update(graph)
            assert first.whs is not None
            assert first.meta.hold_required_nets == len(graph)
            graph.resize_driver("c0s2", 50.0)
            second = session.update()
            full = session.time(graph)
            assert second.whs == full.whs
            for name, per_net in full.events.items():
                for transition, event in per_net.items():
                    ours = second.events[name][transition]
                    assert ours.early_arrival == event.early_arrival
                    assert ours.hold_slack == event.hold_slack


class TestCorners:
    @pytest.fixture(scope="class")
    def corner_config(self):
        return SessionConfig(corners={
            "nom": ModelingOptions(),
            "no_plateau": ModelingOptions(plateau_correction=False),
        })

    def test_corner_round_trips_through_config_dict(self, corner_config):
        clone = SessionConfig.from_dict(corner_config.to_dict())
        assert clone == corner_config

    def test_corner_validation(self):
        with pytest.raises(ModelingError):
            SessionConfig(corners={})
        with pytest.raises(ModelingError):
            SessionConfig(corners={"": ModelingOptions()})
        with pytest.raises(ModelingError):
            SessionConfig(corners={"bad": "not options"})

    def test_unknown_corner_rejected(self, library, corner_config,
                                     four_stage_path):
        with TimingSession(corner_config) as session:
            with pytest.raises(ModelingError, match="unknown corner"):
                session.time(four_stage_path, corner="ghost")

    def test_corners_share_one_memo_keyed_apart(self, library, corner_config,
                                                line):
        graph = parallel_chains(1, 2, lines=[line], input_slew=ps(100))
        with TimingSession(corner_config) as session:
            reports = session.time_corners(graph, name="g")
            assert set(reports) == {"nom", "no_plateau"}
            # Each corner solved its own stages through the one shared solver...
            first_pass = session.stats.computed
            assert first_pass > 0
            # ...and re-timing either corner is now pure memo hits.
            again = session.time(graph, corner="nom")
            assert session.stats.computed == first_pass
            assert again.total_delay == reports["nom"].total_delay

    def test_default_corner_matches_plain_time(self, library, corner_config,
                                               four_stage_path):
        with TimingSession(corner_config) as session:
            plain = session.time(four_stage_path)
            nom = session.time(four_stage_path, corner="nom")
        assert plain.total_delay == nom.total_delay

    def test_time_corners_requires_configuration(self, library,
                                                 four_stage_path):
        with TimingSession() as session:
            with pytest.raises(ModelingError, match="no corners"):
                session.time_corners(four_stage_path)
