"""Truncated power-series arithmetic (including hypothesis property tests)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelingError
from repro.interconnect import PowerSeries

ORDER = 6

finite_coeff = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False,
                         allow_infinity=False)
series_coeffs = st.lists(finite_coeff, min_size=ORDER, max_size=ORDER)
nonzero_lead = st.floats(min_value=0.1, max_value=1e3).flatmap(
    lambda c0: st.lists(finite_coeff, min_size=ORDER - 1, max_size=ORDER - 1).map(
        lambda rest: [c0] + rest))


class TestConstruction:
    def test_basic(self):
        series = PowerSeries([1.0, 2.0, 3.0])
        assert series.order == 3
        assert series.coefficient(1) == 2.0
        assert series.coefficient(10) == 0.0

    def test_order_padding_and_truncation(self):
        padded = PowerSeries([1.0], order=4)
        assert padded.order == 4
        assert padded.coefficient(3) == 0.0
        truncated = PowerSeries([1.0, 2.0, 3.0], order=2)
        assert truncated.order == 2

    def test_invalid_inputs(self):
        with pytest.raises(ModelingError):
            PowerSeries([])
        with pytest.raises(ModelingError):
            PowerSeries([1.0], order=0)
        with pytest.raises(ModelingError):
            PowerSeries([1.0, 2.0]).coefficient(-1)

    def test_special_constructors(self):
        zero = PowerSeries.zero(4)
        assert np.all(zero.coefficients == 0)
        const = PowerSeries.constant(2.5, 4)
        assert const.coefficient(0) == 2.5
        var = PowerSeries.variable(4)
        assert var.coefficient(1) == 1.0
        with pytest.raises(ModelingError):
            PowerSeries.variable(1)


class TestArithmetic:
    def test_polynomial_multiplication_truncates(self):
        a = PowerSeries([1.0, 1.0, 0.0], order=3)     # 1 + s
        b = PowerSeries([2.0, 0.0, 1.0], order=3)     # 2 + s^2
        product = a * b                                # 2 + 2s + s^2 + s^3 (truncated)
        assert product.coefficients == pytest.approx([2.0, 2.0, 1.0])

    def test_scalar_operations(self):
        a = PowerSeries([1.0, 2.0])
        assert (a * 3).coefficients == pytest.approx([3.0, 6.0])
        assert (a + 1).coefficients == pytest.approx([2.0, 2.0])
        assert (1 - a).coefficients == pytest.approx([0.0, -2.0])
        assert (a / 2).coefficients == pytest.approx([0.5, 1.0])

    def test_reciprocal_of_geometric_series(self):
        # 1 / (1 - s) = 1 + s + s^2 + ...
        denominator = PowerSeries([1.0, -1.0, 0.0, 0.0, 0.0])
        inverse = denominator.reciprocal()
        assert inverse.coefficients == pytest.approx([1.0, 1.0, 1.0, 1.0, 1.0])

    def test_reciprocal_requires_nonzero_constant(self):
        with pytest.raises(ModelingError):
            PowerSeries([0.0, 1.0]).reciprocal()

    def test_division_by_zero_scalar(self):
        with pytest.raises(ZeroDivisionError):
            PowerSeries([1.0, 1.0]) / 0

    def test_mismatched_orders_rejected(self):
        with pytest.raises(ModelingError):
            PowerSeries([1.0, 2.0]) + PowerSeries([1.0, 2.0, 3.0])

    def test_evaluate_matches_horner(self):
        series = PowerSeries([1.0, 2.0, 3.0])
        s = 0.1
        assert series.evaluate(s) == pytest.approx(1.0 + 2.0 * s + 3.0 * s * s)


class TestHypothesisProperties:
    @given(series_coeffs, series_coeffs)
    @settings(max_examples=60, deadline=None)
    def test_addition_commutes(self, a, b):
        left = PowerSeries(a) + PowerSeries(b)
        right = PowerSeries(b) + PowerSeries(a)
        assert np.allclose(left.coefficients, right.coefficients)

    @given(series_coeffs, series_coeffs)
    @settings(max_examples=60, deadline=None)
    def test_multiplication_commutes(self, a, b):
        left = PowerSeries(a) * PowerSeries(b)
        right = PowerSeries(b) * PowerSeries(a)
        assert np.allclose(left.coefficients, right.coefficients, rtol=1e-9, atol=1e-6)

    @given(series_coeffs, series_coeffs, series_coeffs)
    @settings(max_examples=40, deadline=None)
    def test_multiplication_distributes_over_addition(self, a, b, c):
        sa, sb, sc = PowerSeries(a), PowerSeries(b), PowerSeries(c)
        left = sa * (sb + sc)
        right = sa * sb + sa * sc
        scale = np.max(np.abs(left.coefficients)) + 1.0
        assert np.allclose(left.coefficients, right.coefficients, atol=1e-7 * scale)

    @given(nonzero_lead)
    @settings(max_examples=60, deadline=None)
    def test_reciprocal_is_multiplicative_inverse(self, coeffs):
        series = PowerSeries(coeffs)
        inverse = series.reciprocal()
        product = series * inverse
        identity = np.zeros(ORDER)
        identity[0] = 1.0
        # The identity holds exactly in real arithmetic; in floating point the error
        # scales with the size of the intermediate reciprocal coefficients (which can
        # explode when c0 is small relative to the rest), so bound it accordingly.
        scale = (np.max(np.abs(inverse.coefficients)) + 1.0) * \
            (np.max(np.abs(coeffs)) + 1.0)
        assert np.allclose(product.coefficients, identity, atol=1e-9 * scale)

    @given(series_coeffs)
    @settings(max_examples=60, deadline=None)
    def test_negation_is_additive_inverse(self, coeffs):
        series = PowerSeries(coeffs)
        total = series + (-series)
        assert np.allclose(total.coefficients, 0.0)
