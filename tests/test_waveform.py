"""Waveform container and timing measurements."""

import numpy as np
import pytest

from repro.analysis import Waveform
from repro.errors import WaveformError


@pytest.fixture
def ramp():
    """A clean 0 -> 1.8 V saturated ramp: starts at 100 ps, 100 ps long."""
    times = np.array([0.0, 100e-12, 200e-12, 400e-12])
    values = np.array([0.0, 0.0, 1.8, 1.8])
    return Waveform(times, values)


class TestConstruction:
    def test_requires_matching_lengths(self):
        with pytest.raises(WaveformError):
            Waveform([0.0, 1.0, 2.0], [0.0, 1.0])

    def test_requires_at_least_two_samples(self):
        with pytest.raises(WaveformError):
            Waveform([0.0], [1.0])

    def test_requires_strictly_increasing_times(self):
        with pytest.raises(WaveformError):
            Waveform([0.0, 1.0, 1.0], [0.0, 0.5, 1.0])
        with pytest.raises(WaveformError):
            Waveform([0.0, 2.0, 1.0], [0.0, 0.5, 1.0])

    def test_rejects_2d_input(self):
        with pytest.raises(WaveformError):
            Waveform([[0.0, 1.0]], [[0.0, 1.0]])

    def test_basic_accessors(self, ramp):
        assert len(ramp) == 4
        assert ramp.t_start == 0.0
        assert ramp.t_end == pytest.approx(400e-12)
        assert ramp.v_min == 0.0
        assert ramp.v_max == pytest.approx(1.8)
        assert ramp.v_final == pytest.approx(1.8)


class TestInterpolation:
    def test_value_at_interpolates_linearly(self, ramp):
        assert ramp.value_at(150e-12) == pytest.approx(0.9)

    def test_value_at_clamps_outside_range(self, ramp):
        assert ramp.value_at(-1.0) == pytest.approx(0.0)
        assert ramp.value_at(1.0) == pytest.approx(1.8)

    def test_value_at_accepts_arrays(self, ramp):
        values = ramp.value_at(np.array([100e-12, 150e-12, 200e-12]))
        assert values == pytest.approx([0.0, 0.9, 1.8])


class TestCrossings:
    def test_single_rising_crossing(self, ramp):
        t = ramp.time_at_level(0.9, rising=True)
        assert t == pytest.approx(150e-12)

    def test_missing_crossing_raises(self, ramp):
        with pytest.raises(WaveformError):
            ramp.time_at_level(2.5)

    def test_rising_filter_excludes_falling_edges(self):
        times = np.linspace(0.0, 4.0, 401)
        values = np.sin(np.pi * times)  # up, down, up, down
        wave = Waveform(times, values)
        rising = wave.crossing_times(0.5, rising=True)
        falling = wave.crossing_times(0.5, rising=False)
        assert len(rising) == 2
        assert len(falling) == 2
        assert np.all(rising < 4.0)

    def test_first_and_last_selection(self):
        times = np.linspace(0.0, 4.0, 401)
        values = np.sin(np.pi * times)
        wave = Waveform(times, values)
        first = wave.time_at_level(0.5, rising=True, which="first")
        last = wave.time_at_level(0.5, rising=True, which="last")
        assert last > first

    def test_invalid_which_raises(self, ramp):
        with pytest.raises(ValueError):
            ramp.time_at_level(0.9, which="middle")


class TestTimingMeasurements:
    def test_delay_is_measured_at_half_vdd(self, ramp):
        delay = ramp.delay(1.8, reference_time=50e-12)
        assert delay == pytest.approx(150e-12 - 50e-12)

    def test_slew_10_90_of_clean_ramp(self, ramp):
        # 10%-90% of a 100 ps full-swing ramp is 80 ps.
        assert ramp.slew(1.8) == pytest.approx(80e-12, rel=1e-9)

    def test_ramp_time_recovers_full_swing_time(self, ramp):
        assert ramp.ramp_time(1.8) == pytest.approx(100e-12, rel=1e-9)

    def test_falling_slew(self):
        times = np.array([0.0, 100e-12, 200e-12, 300e-12])
        values = np.array([1.8, 1.8, 0.0, 0.0])
        wave = Waveform(times, values)
        assert wave.slew(1.8, rising=False) == pytest.approx(80e-12, rel=1e-9)

    def test_invalid_slew_thresholds(self, ramp):
        with pytest.raises(WaveformError):
            ramp.slew(1.8, low=0.9, high=0.1)


class TestTransformations:
    def test_shifted(self, ramp):
        shifted = ramp.shifted(50e-12)
        assert shifted.time_at_level(0.9) == pytest.approx(200e-12)

    def test_scaled(self, ramp):
        scaled = ramp.scaled(0.5)
        assert scaled.v_max == pytest.approx(0.9)

    def test_clipped(self, ramp):
        clipped = ramp.clipped(100e-12, 200e-12)
        assert clipped.t_start == pytest.approx(100e-12)
        assert clipped.t_end == pytest.approx(200e-12)

    def test_clipped_invalid_window(self, ramp):
        with pytest.raises(WaveformError):
            ramp.clipped(200e-12, 100e-12)

    def test_resampled_preserves_shape(self, ramp):
        resampled = ramp.resampled(np.linspace(0, 400e-12, 101))
        assert resampled.value_at(150e-12) == pytest.approx(0.9)

    def test_max_abs_difference_of_identical_waveforms_is_zero(self, ramp):
        assert ramp.max_abs_difference(ramp) == pytest.approx(0.0)

    def test_rms_difference_of_offset_waveforms(self, ramp):
        offset = Waveform(ramp.times, ramp.values + 0.1)
        assert offset.rms_difference(ramp) == pytest.approx(0.1, rel=1e-6)

    def test_difference_requires_overlap(self, ramp):
        other = Waveform(ramp.times + 1.0, ramp.values)
        with pytest.raises(WaveformError):
            ramp.max_abs_difference(other)


class TestConstructors:
    def test_from_function(self):
        wave = Waveform.from_function(lambda t: 2.0 * t, 0.0, 1.0, n_points=11)
        assert wave.value_at(0.5) == pytest.approx(1.0)

    def test_saturated_ramp_rising(self):
        wave = Waveform.saturated_ramp(1.8, 100e-12, delay=50e-12, t_end=400e-12)
        assert wave.value_at(0.0) == pytest.approx(0.0)
        assert wave.value_at(100e-12) == pytest.approx(0.9)
        assert wave.v_final == pytest.approx(1.8)

    def test_saturated_ramp_falling(self):
        wave = Waveform.saturated_ramp(1.8, 100e-12, rising=False, t_end=300e-12)
        assert wave.value_at(0.0) == pytest.approx(1.8)
        assert wave.v_final == pytest.approx(0.0)

    def test_saturated_ramp_requires_positive_ramp_time(self):
        with pytest.raises(WaveformError):
            Waveform.saturated_ramp(1.8, 0.0)
