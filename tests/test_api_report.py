"""TimingReport serialization: lossless JSON round-trip, stable across runs."""

import json

import pytest

from repro.api import TimingReport, TimingSession, compare_reports
from repro.errors import ModelingError
from repro.experiments import reconvergent_graph
from repro.interconnect import RLCLine
from repro.sta import TimingPath, TimingStage
from repro.units import mm, nH, pF, ps


@pytest.fixture(scope="module")
def line():
    return RLCLine(resistance=20.0, inductance=nH(1.05), capacitance=pF(0.22),
                   length=mm(1))


@pytest.fixture(scope="module")
def chain_path(line):
    return TimingPath("chain", [
        TimingStage("s1", driver_size=75, line=line, receiver_size=100),
        TimingStage("s2", driver_size=100, line=line, receiver_size=50),
    ], input_slew=ps(100))


@pytest.fixture(scope="module")
def session(library):
    with TimingSession() as active:
        yield active


@pytest.fixture(scope="module")
def chain_report(session, chain_path):
    return session.time(chain_path)


@pytest.fixture(scope="module")
def diamond_report(session, line):
    return session.time(reconvergent_graph(line=line), name="diamond")


@pytest.fixture(scope="module")
def constrained_report(session, line):
    graph = reconvergent_graph(line=line)
    graph.set_clock_period(ps(400))
    graph.set_required("sink", ps(180), transition="rise")
    return session.time(graph, name="constrained")


def strip_wall_clock(payload):
    """The serialized report minus run-dependent metadata (wall clock, cache
    counters that depend on what else the producing session already solved)."""
    clean = json.loads(json.dumps(payload))
    clean.pop("meta")
    return clean


class TestLosslessRoundTrip:
    @pytest.mark.parametrize("fixture", ["chain_report", "diamond_report"])
    def test_dict_and_json_round_trip_exactly(self, fixture, request):
        report = request.getfixturevalue(fixture)
        assert TimingReport.from_dict(report.to_dict()) == report
        assert TimingReport.from_json(report.to_json()) == report

    def test_floats_survive_bit_exactly(self, diamond_report):
        clone = TimingReport.from_json(diamond_report.to_json())
        for name, per_net in diamond_report.events.items():
            for transition, event in per_net.items():
                other = clone.events[name][transition]
                assert other.output_arrival == event.output_arrival
                assert other.far_slew == event.far_slew
                assert other.ceff1 == event.ceff1
                assert other.tr1 == event.tr1

    def test_save_and_load(self, chain_report, tmp_path):
        path = chain_report.save(tmp_path / "report.json")
        assert TimingReport.load(path) == chain_report

    def test_unknown_format_rejected(self, chain_report):
        payload = chain_report.to_dict()
        payload["format"] = 999
        with pytest.raises(ModelingError):
            TimingReport.from_dict(payload)


class TestStabilityAcrossRuns:
    def test_chain_serialization_is_run_independent(self, chain_report,
                                                    chain_path, library):
        with TimingSession() as rerun:
            again = rerun.time(chain_path)
        assert strip_wall_clock(again.to_dict()) == \
            strip_wall_clock(chain_report.to_dict())

    def test_diamond_serialization_is_run_independent(self, diamond_report,
                                                      line, library):
        with TimingSession() as rerun:
            again = rerun.time(reconvergent_graph(line=line), name="diamond")
        assert strip_wall_clock(again.to_dict()) == \
            strip_wall_clock(diamond_report.to_dict())

    def test_rise_fall_event_ordering_is_sorted(self, diamond_report):
        payload = diamond_report.to_dict()
        # The diamond's sink sees both transitions; serialization orders them
        # deterministically (fall before rise) and nets alphabetically.
        assert list(payload["events"]["sink"]) == ["fall", "rise"]
        assert list(payload["events"]) == sorted(payload["events"])

    def test_json_text_is_byte_stable(self, diamond_report, line, library):
        with TimingSession() as rerun:
            again = rerun.time(reconvergent_graph(line=line), name="diamond")
        first = json.dumps(strip_wall_clock(diamond_report.to_dict()),
                           sort_keys=True)
        second = json.dumps(strip_wall_clock(again.to_dict()), sort_keys=True)
        assert first == second


class TestReportQueries:
    def test_path_report_reads_like_a_path(self, chain_report, chain_path):
        assert chain_report.kind == "path"
        assert chain_report.design == "chain"
        assert len(chain_report.critical_path) == len(chain_path)
        assert chain_report.nets == [name for name, _ in
                                     chain_report.critical_path]
        delays = chain_report.stage_delays()
        assert chain_report.total_delay == pytest.approx(sum(delays))

    def test_event_lookup_and_errors(self, diamond_report):
        worst = diamond_report.worst_event()
        assert worst.net == "sink"
        assert diamond_report.arrival("sink") == worst.output_arrival
        with pytest.raises(ModelingError):
            diamond_report.event("ghost")
        with pytest.raises(ModelingError):
            diamond_report.event("root", "fall")  # the PI rises

    def test_format_report_mentions_critical_path(self, diamond_report):
        text = diamond_report.format_report()
        assert "critical path" in text
        assert "worst sink arrival" in text
        assert "diamond" in text

    def test_meta_records_version_and_cache_behaviour(self, chain_report):
        from repro import __version__
        assert chain_report.meta.version == __version__
        assert chain_report.meta.requests >= chain_report.n_events


class TestSlackSerialization:
    def test_unconstrained_report_has_no_slack(self, diamond_report):
        assert not diamond_report.constrained
        assert diamond_report.wns is None
        assert diamond_report.endpoint_slacks() == []
        with pytest.raises(ModelingError):
            diamond_report.worst_slack_event()
        assert "no constrained endpoints" in diamond_report.format_slack_table()

    def test_slack_survives_round_trip_bit_exactly(self, constrained_report):
        clone = TimingReport.from_json(constrained_report.to_json())
        assert clone == constrained_report
        assert clone.wns == constrained_report.wns
        for name, per_net in constrained_report.events.items():
            for transition, event in per_net.items():
                other = clone.events[name][transition]
                assert other.required == event.required
                assert other.slack == event.slack
                assert other.endpoint == event.endpoint

    def test_slack_queries_and_table(self, constrained_report):
        report = constrained_report
        assert report.constrained
        worst = report.worst_slack_event()
        assert worst.net == "sink"
        assert worst.slack == report.worst_slack
        # The tight 180 ps rise pin wins over the 400 ps clock on the other edge.
        assert worst.output_transition == "rise"
        assert report.slack("sink") == report.worst_slack
        assert report.slack("sink", worst.input_transition) == worst.slack
        table = report.format_slack_table()
        assert "endpoint" in table and "WNS" in table
        assert "slack" in report.format_report()

    def test_legacy_payload_without_slack_fields_loads(self, diamond_report):
        # Reports saved before the slack-aware kernel lack the three new event
        # keys and the two incremental meta keys; they must still load.
        payload = diamond_report.to_dict()
        for per_net in payload["events"].values():
            for event in per_net.values():
                for key in ("required", "slack", "endpoint"):
                    event.pop(key)
        for key in ("dirty_nets", "retimed_nets"):
            payload["meta"].pop(key)
        loaded = TimingReport.from_dict(payload)
        assert loaded.wns is None
        assert loaded.total_delay == diamond_report.total_delay


class TestReportDiff:
    def test_no_regression_between_identical_reports(self, constrained_report):
        diff = compare_reports(constrained_report, constrained_report)
        assert not diff.regressed
        assert diff.changed_endpoints == []
        assert "no slack regression" in diff.describe()

    def test_wns_worsening_regresses(self, session, line):
        graph = reconvergent_graph(line=line)
        graph.set_clock_period(ps(150))  # violated: arrivals exceed 150 ps
        tight = session.time(graph, name="tight")
        graph.set_clock_period(ps(140))  # even more violated
        tighter = session.time(graph, name="tighter")
        assert tight.wns < 0
        diff = compare_reports(tight, tighter)
        assert diff.regressed
        assert "WNS regression" in diff.describe()
        assert not compare_reports(tighter, tight).regressed  # improvement

    def test_new_violation_on_unconstrained_baseline_regresses(
            self, session, line, diamond_report):
        graph = reconvergent_graph(line=line)
        graph.set_clock_period(ps(150))
        violating = session.time(graph, name="violating")
        assert compare_reports(diamond_report, violating).regressed
        # The reverse direction drops the constraints entirely — the gate must
        # flag the coverage loss instead of silently passing.
        lost = compare_reports(violating, diamond_report)
        assert lost.regressed
        assert "coverage lost" in lost.describe()

    def test_unconstrained_pair_never_regresses(self, chain_report,
                                                diamond_report):
        assert not compare_reports(chain_report, chain_report).regressed
        assert not compare_reports(chain_report, diamond_report).regressed

    def test_diff_tracks_event_population(self, chain_report, diamond_report):
        diff = compare_reports(chain_report, diamond_report)
        assert diff.added_events > 0 and diff.removed_events > 0
