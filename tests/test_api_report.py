"""TimingReport serialization: lossless JSON round-trip, stable across runs."""

import json

import pytest

from repro.api import TimingReport, TimingSession, compare_reports
from repro.errors import ModelingError
from repro.experiments import reconvergent_graph
from repro.interconnect import RLCLine
from repro.sta import TimingPath, TimingStage
from repro.units import mm, nH, pF, ps


@pytest.fixture(scope="module")
def line():
    return RLCLine(resistance=20.0, inductance=nH(1.05), capacitance=pF(0.22),
                   length=mm(1))


@pytest.fixture(scope="module")
def chain_path(line):
    return TimingPath("chain", [
        TimingStage("s1", driver_size=75, line=line, receiver_size=100),
        TimingStage("s2", driver_size=100, line=line, receiver_size=50),
    ], input_slew=ps(100))


@pytest.fixture(scope="module")
def session(library):
    with TimingSession() as active:
        yield active


@pytest.fixture(scope="module")
def chain_report(session, chain_path):
    return session.time(chain_path)


@pytest.fixture(scope="module")
def diamond_report(session, line):
    return session.time(reconvergent_graph(line=line), name="diamond")


@pytest.fixture(scope="module")
def constrained_report(session, line):
    graph = reconvergent_graph(line=line)
    graph.set_clock_period(ps(400))
    graph.set_required("sink", ps(180), transition="rise")
    return session.time(graph, name="constrained")


@pytest.fixture(scope="module")
def dual_report(session, line):
    """A dual-mode report: setup clock plus a hold margin and a hold pin."""
    graph = reconvergent_graph(line=line)
    graph.set_clock_period(ps(400), hold_margin=ps(120))
    graph.set_required("sink", ps(250), transition="rise", mode="hold")
    return session.time(graph, name="dual")


def strip_wall_clock(payload):
    """The serialized report minus run-dependent metadata (wall clock, cache
    counters that depend on what else the producing session already solved)."""
    clean = json.loads(json.dumps(payload))
    clean.pop("meta")
    return clean


class TestLosslessRoundTrip:
    @pytest.mark.parametrize("fixture", ["chain_report", "diamond_report"])
    def test_dict_and_json_round_trip_exactly(self, fixture, request):
        report = request.getfixturevalue(fixture)
        assert TimingReport.from_dict(report.to_dict()) == report
        assert TimingReport.from_json(report.to_json()) == report

    def test_floats_survive_bit_exactly(self, diamond_report):
        clone = TimingReport.from_json(diamond_report.to_json())
        for name, per_net in diamond_report.events.items():
            for transition, event in per_net.items():
                other = clone.events[name][transition]
                assert other.output_arrival == event.output_arrival
                assert other.far_slew == event.far_slew
                assert other.ceff1 == event.ceff1
                assert other.tr1 == event.tr1

    def test_save_and_load(self, chain_report, tmp_path):
        path = chain_report.save(tmp_path / "report.json")
        assert TimingReport.load(path) == chain_report

    def test_unknown_format_rejected(self, chain_report):
        payload = chain_report.to_dict()
        payload["format"] = 999
        with pytest.raises(ModelingError):
            TimingReport.from_dict(payload)


class TestStabilityAcrossRuns:
    def test_chain_serialization_is_run_independent(self, chain_report,
                                                    chain_path, library):
        with TimingSession() as rerun:
            again = rerun.time(chain_path)
        assert strip_wall_clock(again.to_dict()) == \
            strip_wall_clock(chain_report.to_dict())

    def test_diamond_serialization_is_run_independent(self, diamond_report,
                                                      line, library):
        with TimingSession() as rerun:
            again = rerun.time(reconvergent_graph(line=line), name="diamond")
        assert strip_wall_clock(again.to_dict()) == \
            strip_wall_clock(diamond_report.to_dict())

    def test_rise_fall_event_ordering_is_sorted(self, diamond_report):
        payload = diamond_report.to_dict()
        # The diamond's sink sees both transitions; serialization orders them
        # deterministically (fall before rise) and nets alphabetically.
        assert list(payload["events"]["sink"]) == ["fall", "rise"]
        assert list(payload["events"]) == sorted(payload["events"])

    def test_json_text_is_byte_stable(self, diamond_report, line, library):
        with TimingSession() as rerun:
            again = rerun.time(reconvergent_graph(line=line), name="diamond")
        first = json.dumps(strip_wall_clock(diamond_report.to_dict()),
                           sort_keys=True)
        second = json.dumps(strip_wall_clock(again.to_dict()), sort_keys=True)
        assert first == second


class TestReportQueries:
    def test_path_report_reads_like_a_path(self, chain_report, chain_path):
        assert chain_report.kind == "path"
        assert chain_report.design == "chain"
        assert len(chain_report.critical_path) == len(chain_path)
        assert chain_report.nets == [name for name, _ in
                                     chain_report.critical_path]
        delays = chain_report.stage_delays()
        assert chain_report.total_delay == pytest.approx(sum(delays))

    def test_event_lookup_and_errors(self, diamond_report):
        worst = diamond_report.worst_event()
        assert worst.net == "sink"
        assert diamond_report.arrival("sink") == worst.output_arrival
        with pytest.raises(ModelingError):
            diamond_report.event("ghost")
        with pytest.raises(ModelingError):
            diamond_report.event("root", "fall")  # the PI rises

    def test_format_report_mentions_critical_path(self, diamond_report):
        text = diamond_report.format_report()
        assert "critical path" in text
        assert "worst sink arrival" in text
        assert "diamond" in text

    def test_meta_records_version_and_cache_behaviour(self, chain_report):
        from repro import __version__
        assert chain_report.meta.version == __version__
        assert chain_report.meta.requests >= chain_report.n_events


class TestSlackSerialization:
    def test_unconstrained_report_has_no_slack(self, diamond_report):
        assert not diamond_report.constrained
        assert diamond_report.wns is None
        assert diamond_report.endpoint_slacks() == []
        with pytest.raises(ModelingError):
            diamond_report.worst_slack_event()
        assert "no constrained endpoints" in diamond_report.format_slack_table()

    def test_slack_survives_round_trip_bit_exactly(self, constrained_report):
        clone = TimingReport.from_json(constrained_report.to_json())
        assert clone == constrained_report
        assert clone.wns == constrained_report.wns
        for name, per_net in constrained_report.events.items():
            for transition, event in per_net.items():
                other = clone.events[name][transition]
                assert other.required == event.required
                assert other.slack == event.slack
                assert other.endpoint == event.endpoint

    def test_slack_queries_and_table(self, constrained_report):
        report = constrained_report
        assert report.constrained
        worst = report.worst_slack_event()
        assert worst.net == "sink"
        assert worst.slack == report.worst_slack
        # The tight 180 ps rise pin wins over the 400 ps clock on the other edge.
        assert worst.output_transition == "rise"
        assert report.slack("sink") == report.worst_slack
        assert report.slack("sink", worst.input_transition) == worst.slack
        table = report.format_slack_table()
        assert "endpoint" in table and "WNS" in table
        assert "slack" in report.format_report()

    def test_legacy_payload_without_slack_fields_loads(self, diamond_report):
        # Reports saved before the slack-aware kernel lack the three new event
        # keys and the two incremental meta keys; they must still load.
        payload = diamond_report.to_dict()
        for per_net in payload["events"].values():
            for event in per_net.values():
                for key in ("required", "slack", "endpoint"):
                    event.pop(key)
        for key in ("dirty_nets", "retimed_nets"):
            payload["meta"].pop(key)
        loaded = TimingReport.from_dict(payload)
        assert loaded.wns is None
        assert loaded.total_delay == diamond_report.total_delay


class TestHoldSerialization:
    def test_unconstrained_report_has_no_hold_slack(self, diamond_report):
        assert not diamond_report.hold_constrained
        assert diamond_report.whs is None
        assert diamond_report.hold_slacks() == []
        with pytest.raises(ModelingError):
            diamond_report.worst_slack_event(mode="hold")
        table = diamond_report.format_slack_table(mode="hold")
        assert "no hold-constrained endpoints" in table

    def test_dual_mode_survives_round_trip_bit_exactly(self, dual_report):
        clone = TimingReport.from_json(dual_report.to_json())
        assert clone == dual_report
        assert clone.whs == dual_report.whs
        assert clone.wns == dual_report.wns
        for name, per_net in dual_report.events.items():
            for transition, event in per_net.items():
                other = clone.events[name][transition]
                assert other.early_arrival == event.early_arrival
                assert other.early_source == event.early_source
                assert other.hold_required == event.hold_required
                assert other.hold_slack == event.hold_slack

    def test_hold_queries_and_table(self, dual_report):
        report = dual_report
        assert report.constrained and report.hold_constrained
        worst = report.worst_slack_event(mode="hold")
        # The 250 ps hold pin on the rise edge dominates the 120 ps margin.
        assert worst.net == "sink"
        assert worst.hold_slack == report.worst_hold_slack
        assert report.slack("sink", mode="hold") == report.worst_hold_slack
        assert report.event("sink", worst.input_transition).hold_required \
            is not None
        assert report.early_arrival("sink") is not None
        assert report.hold_slacks() == report.endpoint_slacks(mode="hold")
        table = report.format_slack_table(mode="hold")
        assert "hold" in table and "WHS" in table and "early" in table
        assert "worst hold slack" in report.format_report()
        with pytest.raises(ModelingError):
            report.slack("sink", mode="race")

    def test_every_event_early_no_later_than_late(self, dual_report):
        for per_net in dual_report.events.values():
            for event in per_net.values():
                assert event.early_arrival <= event.output_arrival

    def test_early_arrival_takes_the_minimum_over_events(self, dual_report):
        # The diamond sink carries rise and fall events: the net-level query
        # must answer the best case, not the early value of the worst-late one.
        events = dual_report.events["sink"].values()
        assert dual_report.early_arrival("sink") == min(
            event.early_arrival for event in events)
        for transition, event in dual_report.events["sink"].items():
            assert (dual_report.early_arrival("sink", transition)
                    == event.early_arrival)

    def test_meta_records_the_analysis_mode(self, session, line, dual_report):
        assert dual_report.meta.mode == "both"
        graph = reconvergent_graph(line=line)
        graph.set_clock_period(ps(400), hold_margin=ps(120))
        setup_only = session.time(graph, mode="setup", name="setup_only")
        assert setup_only.meta.mode == "setup"
        assert setup_only.constrained and not setup_only.hold_constrained
        clone = TimingReport.from_json(setup_only.to_json())
        assert clone.meta.mode == "setup"

    def test_legacy_payload_without_dual_mode_fields_loads(self,
                                                           diamond_report):
        # Reports saved before the dual-mode kernel lack the four new event
        # keys and the three new meta keys; they must still load.
        payload = diamond_report.to_dict()
        for per_net in payload["events"].values():
            for event in per_net.values():
                for key in ("early_arrival", "early_source", "hold_required",
                            "hold_slack"):
                    event.pop(key)
        for key in ("mode", "required_nets", "hold_required_nets"):
            payload["meta"].pop(key)
        loaded = TimingReport.from_dict(payload)
        assert loaded.whs is None
        assert not loaded.hold_constrained
        assert loaded.meta.mode == "both"
        assert loaded.early_arrival("sink") is None
        assert loaded.total_delay == diamond_report.total_delay


class TestReportDiff:
    def test_no_regression_between_identical_reports(self, constrained_report):
        diff = compare_reports(constrained_report, constrained_report)
        assert not diff.regressed
        assert diff.changed_endpoints == []
        assert "no slack regression" in diff.describe()

    def test_wns_worsening_regresses(self, session, line):
        graph = reconvergent_graph(line=line)
        graph.set_clock_period(ps(150))  # violated: arrivals exceed 150 ps
        tight = session.time(graph, name="tight")
        graph.set_clock_period(ps(140))  # even more violated
        tighter = session.time(graph, name="tighter")
        assert tight.wns < 0
        diff = compare_reports(tight, tighter)
        assert diff.regressed
        assert "WNS regression" in diff.describe()
        assert not compare_reports(tighter, tight).regressed  # improvement

    def test_new_violation_on_unconstrained_baseline_regresses(
            self, session, line, diamond_report):
        graph = reconvergent_graph(line=line)
        graph.set_clock_period(ps(150))
        violating = session.time(graph, name="violating")
        assert compare_reports(diamond_report, violating).regressed
        # The reverse direction drops the constraints entirely — the gate must
        # flag the coverage loss instead of silently passing.
        lost = compare_reports(violating, diamond_report)
        assert lost.regressed
        assert "coverage lost" in lost.describe()

    def test_unconstrained_pair_never_regresses(self, chain_report,
                                                diamond_report):
        assert not compare_reports(chain_report, chain_report).regressed
        assert not compare_reports(chain_report, diamond_report).regressed

    def test_diff_tracks_event_population(self, chain_report, diamond_report):
        diff = compare_reports(chain_report, diamond_report)
        assert diff.added_events > 0 and diff.removed_events > 0

    def test_whs_worsening_regresses(self, session, line):
        graph = reconvergent_graph(line=line)
        graph.set_clock_period(ps(400), hold_margin=ps(250))  # violated
        loose = session.time(graph, name="loose")
        graph.set_clock_period(ps(400), hold_margin=ps(280))  # more violated
        tighter = session.time(graph, name="tighter")
        assert loose.whs < 0
        assert loose.wns == 0.0  # setup is clean: only the hold plane moves
        diff = compare_reports(loose, tighter)
        assert diff.hold_regressed and not diff.setup_regressed
        assert diff.regressed
        assert "WHS regression" in diff.describe()
        assert diff.changed_hold_endpoints and not diff.changed_endpoints
        assert not compare_reports(tighter, loose).regressed  # improvement

    def test_hold_coverage_loss_regresses(self, session, line, dual_report):
        graph = reconvergent_graph(line=line)
        graph.set_clock_period(ps(400))  # same clock, hold margin dropped
        setup_only = session.time(graph, name="setup_only")
        lost = compare_reports(dual_report, setup_only)
        assert lost.hold_regressed and lost.regressed
        assert "hold coverage lost" in lost.describe()
