"""Cell characterization: measurement, serialization, library, driver resistance."""

import math

import numpy as np
import pytest

from repro.analysis import Waveform
from repro.characterization import (CellCharacterization, CellLibrary,
                                    CharacterizationGrid, MissingCellLibraryWarning,
                                    characterize_inverter, default_library,
                                    resistance_from_waveform, shipped_data_directory,
                                    simulate_driver_with_load)
from repro.errors import CharacterizationError
from repro.tech import InverterSpec
from repro.units import fF, ps, to_ps


class TestDriverResistance:
    def test_recovers_resistance_of_ideal_rc_charging(self):
        """For v = vdd*(1 - exp(-t/RC)), the 50->90% fit returns exactly R."""
        resistance, capacitance, vdd = 75.0, 1e-12, 1.8
        tau = resistance * capacitance
        times = np.linspace(0, 12 * tau, 4000)
        wave = Waveform(times, vdd * (1 - np.exp(-times / tau)))
        extracted = resistance_from_waveform(wave, vdd, capacitance)
        assert extracted == pytest.approx(resistance, rel=1e-3)

    def test_falling_edge(self):
        resistance, capacitance, vdd = 120.0, 0.5e-12, 1.8
        tau = resistance * capacitance
        times = np.linspace(0, 12 * tau, 4000)
        wave = Waveform(times, vdd * np.exp(-times / tau))
        extracted = resistance_from_waveform(wave, vdd, capacitance, rising=False)
        assert extracted == pytest.approx(resistance, rel=1e-3)

    def test_input_validation(self):
        wave = Waveform([0.0, 1e-9], [0.0, 1.8])
        with pytest.raises(CharacterizationError):
            resistance_from_waveform(wave, -1.0, 1e-12)
        with pytest.raises(CharacterizationError):
            resistance_from_waveform(wave, 1.8, 0.0)


class TestCharacterizationGrid:
    def test_default_grid_spans_paper_conditions(self):
        grid = CharacterizationGrid.default()
        assert min(grid.input_slews) <= ps(50) <= max(grid.input_slews)
        assert min(grid.input_slews) <= ps(200) <= max(grid.input_slews)
        assert max(grid.loads) >= fF(2000)

    def test_validation(self):
        with pytest.raises(CharacterizationError):
            CharacterizationGrid(input_slews=(ps(100),), loads=(fF(10), fF(20)))
        with pytest.raises(CharacterizationError):
            CharacterizationGrid(input_slews=(ps(100), ps(50)), loads=(fF(10), fF(20)))
        with pytest.raises(CharacterizationError):
            CharacterizationGrid(input_slews=(ps(50), ps(100)), loads=(fF(20), -fF(10)))


class TestSimulateDriverWithLoad:
    def test_measurement_scaling_with_load(self, tech):
        spec = InverterSpec(tech=tech, size=50)
        light = simulate_driver_with_load(spec, ps(100), fF(100))
        heavy = simulate_driver_with_load(spec, ps(100), fF(800))
        assert heavy.delay > light.delay
        assert heavy.transition > 2.0 * light.transition
        # The fitted on-resistance is a device property: roughly load-independent.
        assert heavy.resistance == pytest.approx(light.resistance, rel=0.5)

    def test_rise_and_fall_directions(self, tech):
        spec = InverterSpec(tech=tech, size=50)
        rise = simulate_driver_with_load(spec, ps(100), fF(300), transition="rise")
        fall = simulate_driver_with_load(spec, ps(100), fF(300), transition="fall")
        assert rise.delay > 0 and fall.delay > 0
        # NMOS is stronger than PMOS, so the falling output is faster.
        assert fall.transition < rise.transition

    def test_invalid_transition(self, tech):
        spec = InverterSpec(tech=tech, size=50)
        with pytest.raises(CharacterizationError):
            simulate_driver_with_load(spec, ps(100), fF(100), transition="both")


class TestCharacterizeInverter:
    @pytest.fixture(scope="class")
    def coarse_cell(self, tech):
        spec = InverterSpec(tech=tech, size=40)
        return characterize_inverter(spec, grid=CharacterizationGrid.coarse(),
                                     transitions=("rise",))

    def test_tables_are_monotonic_in_load(self, coarse_cell):
        slew = coarse_cell.input_slews[0]
        delays = [coarse_cell.delay(slew, load) for load in coarse_cell.loads]
        transitions = [coarse_cell.output_transition(slew, load)
                       for load in coarse_cell.loads]
        assert all(d2 > d1 for d1, d2 in zip(delays, delays[1:]))
        assert all(t2 > t1 for t1, t2 in zip(transitions, transitions[1:]))

    def test_fall_tables_mirrored_when_not_characterized(self, coarse_cell):
        slew, load = coarse_cell.input_slews[0], coarse_cell.loads[0]
        assert coarse_cell.delay(slew, load, transition="fall") == pytest.approx(
            coarse_cell.delay(slew, load, transition="rise"))

    def test_ramp_time_scales_measured_transition(self, coarse_cell):
        slew, load = coarse_cell.input_slews[1], coarse_cell.loads[1]
        measured = coarse_cell.output_transition(slew, load)
        assert coarse_cell.ramp_time(slew, load) == pytest.approx(measured / 0.8)

    def test_serialization_roundtrip(self, coarse_cell, tmp_path):
        path = coarse_cell.save(tmp_path / "cell.json")
        reloaded = CellCharacterization.load(path)
        assert reloaded.cell_name == coarse_cell.cell_name
        assert reloaded.driver_size == coarse_cell.driver_size
        slew, load = coarse_cell.input_slews[1], coarse_cell.loads[2]
        assert reloaded.delay(slew, load) == pytest.approx(coarse_cell.delay(slew, load))
        assert reloaded.driver_resistance(slew, load) == pytest.approx(
            coarse_cell.driver_resistance(slew, load))

    def test_invalid_transition_lookup(self, coarse_cell):
        with pytest.raises(CharacterizationError):
            coarse_cell.delay(ps(100), fF(100), transition="sideways")


class TestShippedLibrary:
    def test_shipped_directory_has_paper_sizes(self):
        directory = shipped_data_directory()
        names = {path.stem for path in directory.glob("*.json")}
        assert {"inv_25x", "inv_75x", "inv_100x"} <= names

    def test_default_library_contents(self, library):
        assert {25.0, 75.0, 100.0, 125.0} <= set(library.sizes)
        assert 75.0 in library

    def test_missing_size_raises(self, library):
        with pytest.raises(CharacterizationError):
            library.get(9999)

    def test_driver_resistance_decreases_with_size(self, library):
        slew, load = ps(100), fF(1000)
        resistances = [library.get(size).driver_resistance(slew, load)
                       for size in (25, 50, 75, 100, 125)]
        assert all(r2 < r1 for r1, r2 in zip(resistances, resistances[1:]))

    def test_paper_regime_breakpoint_above_half(self, library):
        """For the paper's strong drivers the Eq. 1 breakpoint lands above 0.5*Vdd."""
        cell = library.get(75)
        rs = cell.driver_resistance(ps(100), fF(1100))
        z0 = math.sqrt(5.14e-9 / 1.10e-12)
        assert z0 / (z0 + rs) > 0.5

    def test_delay_tables_monotonic_in_load(self, cell75):
        slew = ps(100)
        delays = [cell75.delay(slew, load) for load in cell75.loads]
        assert all(d2 > d1 for d1, d2 in zip(delays, delays[1:]))

    def test_library_from_directory_roundtrip(self, library, tmp_path):
        library.save_to_directory(tmp_path)
        reloaded = CellLibrary.from_directory(tmp_path)
        assert set(reloaded.sizes) == set(library.sizes)

    def test_from_missing_directory_is_empty_but_warns(self, tmp_path):
        with pytest.warns(MissingCellLibraryWarning):
            empty = CellLibrary.from_directory(tmp_path / "does_not_exist")
        assert len(empty) == 0

    def test_get_or_characterize_caches(self, tech):
        library = CellLibrary(tech=tech)
        cell = library.get_or_characterize(15, grid=CharacterizationGrid.coarse())
        assert 15.0 in library
        again = library.get_or_characterize(15)
        assert again is cell

    def test_describe(self, cell75):
        text = cell75.describe()
        assert "inv_75x" in text and "1.8" in text
