"""Unit-conversion helpers."""

import pytest

from repro import units


def test_time_constructors_scale_correctly():
    assert units.ps(1.0) == pytest.approx(1e-12)
    assert units.ns(2.5) == pytest.approx(2.5e-9)


def test_time_accessors_invert_constructors():
    assert units.to_ps(units.ps(123.4)) == pytest.approx(123.4)
    assert units.to_ns(units.ns(0.75)) == pytest.approx(0.75)


def test_capacitance_units():
    assert units.fF(10.0) == pytest.approx(1e-14)
    assert units.pF(1.1) == pytest.approx(1.1e-12)
    assert units.to_fF(units.fF(42.0)) == pytest.approx(42.0)
    assert units.to_pF(units.pF(0.59)) == pytest.approx(0.59)


def test_inductance_units():
    assert units.nH(5.14) == pytest.approx(5.14e-9)
    assert units.pH(250.0) == pytest.approx(2.5e-10)
    assert units.to_nH(units.nH(3.3)) == pytest.approx(3.3)


def test_length_units():
    assert units.mm(5.0) == pytest.approx(5e-3)
    assert units.um(1.6) == pytest.approx(1.6e-6)
    assert units.nm(180.0) == pytest.approx(1.8e-7)
    assert units.to_mm(units.mm(7.0)) == pytest.approx(7.0)
    assert units.to_um(units.um(0.8)) == pytest.approx(0.8)


def test_electrical_units():
    assert units.ohm(72.44) == pytest.approx(72.44)
    assert units.kohm(1.5) == pytest.approx(1500.0)
    assert units.mV(900.0) == pytest.approx(0.9)
    assert units.uA(600.0) == pytest.approx(6e-4)


def test_roundtrip_composition():
    value = 0.123456
    assert units.to_ps(units.ps(value)) == pytest.approx(value, rel=1e-12)
    assert units.to_nH(units.nH(value)) == pytest.approx(value, rel=1e-12)
    assert units.to_fF(units.fF(value)) == pytest.approx(value, rel=1e-12)
