"""Rational admittance (Eq. 3) fitting and the O'Brien/Savarino pi-model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelingError
from repro.interconnect import (PiModel, RationalAdmittance, RLCLine,
                                admittance_moments, fit_pi_model,
                                fit_rational_admittance)
from repro.units import mm, nH, pF


@pytest.fixture(scope="module")
def inductive_moments():
    line = RLCLine(resistance=72.44, inductance=nH(5.14), capacitance=pF(1.10),
                   length=mm(5))
    return admittance_moments(line, 0.0)


@pytest.fixture(scope="module")
def rc_moments():
    line = RLCLine(resistance=101.3, inductance=1e-15, capacitance=pF(1.54),
                   length=mm(7))
    return admittance_moments(line, 0.0)


class TestRationalAdmittanceFit:
    def test_reexpanded_moments_match_first_five(self, inductive_moments):
        fit = fit_rational_admittance(inductive_moments)
        recovered = fit.moments(6)
        assert recovered[1:6] == pytest.approx(inductive_moments[1:6], rel=1e-6)

    def test_total_capacitance_is_m1(self, inductive_moments):
        fit = fit_rational_admittance(inductive_moments)
        assert fit.total_capacitance == pytest.approx(inductive_moments[1], rel=1e-12)

    def test_inductive_line_has_complex_poles(self, inductive_moments):
        fit = fit_rational_admittance(inductive_moments)
        assert fit.has_complex_poles
        poles = fit.poles()
        assert len(poles) == 2
        # Conjugate pair with negative real part (stable).
        assert poles[0].real < 0
        assert poles[0] == pytest.approx(np.conj(poles[1]))

    def test_rc_line_has_real_stable_poles(self, rc_moments):
        fit = fit_rational_admittance(rc_moments)
        poles = fit.poles()
        assert len(poles) >= 1
        assert all(abs(p.imag) < 1e-6 * abs(p.real) for p in poles)
        assert all(p.real < 0 for p in poles)

    def test_evaluate_matches_low_frequency_expansion(self, inductive_moments):
        fit = fit_rational_admittance(inductive_moments)
        s = 1j * 2 * np.pi * 1e8
        direct = fit.evaluate(s)
        series = sum(m * s ** k for k, m in enumerate(inductive_moments[:6]))
        assert direct.real == pytest.approx(series.real, rel=1e-3, abs=1e-10)
        assert direct.imag == pytest.approx(series.imag, rel=1e-3)

    def test_requires_six_moments(self):
        with pytest.raises(ModelingError):
            fit_rational_admittance([0.0, 1e-12, -1e-22])

    def test_requires_positive_m1(self):
        with pytest.raises(ModelingError):
            fit_rational_admittance([0.0, -1e-12, 0, 0, 0, 0])

    def test_pure_capacitor_degenerates_gracefully(self):
        capacitance = 0.5e-12
        moments = [0.0, capacitance, 0.0, 0.0, 0.0, 0.0]
        fit = fit_rational_admittance(moments)
        assert fit.a1 == pytest.approx(capacitance)
        assert fit.b1 == pytest.approx(0.0)
        assert fit.b2 == pytest.approx(0.0)
        assert len(fit.poles()) == 0

    def test_pi_load_degenerates_to_first_order_denominator(self):
        pi = PiModel(c_near=0.2e-12, resistance=80.0, c_far=0.6e-12)
        moments = pi.as_rational().moments(6)
        fit = fit_rational_admittance(moments)
        assert fit.b2 == pytest.approx(0.0, abs=1e-30)
        assert fit.b1 == pytest.approx(80.0 * 0.6e-12, rel=1e-6)
        assert fit.a3 == pytest.approx(0.0, abs=1e-40)

    def test_describe_mentions_pole_character(self, inductive_moments):
        assert "complex" in fit_rational_admittance(inductive_moments).describe()


class TestPiModel:
    def test_fit_recovers_synthetic_pi(self):
        original = PiModel(c_near=0.25e-12, resistance=120.0, c_far=0.75e-12)
        moments = original.as_rational().moments(6)
        recovered = fit_pi_model(moments)
        assert recovered.c_near == pytest.approx(original.c_near, rel=1e-9)
        assert recovered.resistance == pytest.approx(original.resistance, rel=1e-9)
        assert recovered.c_far == pytest.approx(original.c_far, rel=1e-9)

    def test_rc_line_produces_realizable_pi(self, rc_moments):
        pi = fit_pi_model(rc_moments)
        assert pi.c_near > 0 and pi.c_far > 0 and pi.resistance > 0
        assert pi.total_capacitance == pytest.approx(rc_moments[1], rel=1e-6)

    def test_inductive_line_is_not_realizable_as_pi(self, inductive_moments):
        """The paper's motivation: with inductance the pi model cannot be synthesized."""
        with pytest.raises(ModelingError):
            fit_pi_model(inductive_moments)

    def test_requires_four_moments(self):
        with pytest.raises(ModelingError):
            fit_pi_model([0.0, 1e-12])

    def test_as_rational_roundtrip_moments(self):
        pi = PiModel(c_near=0.1e-12, resistance=50.0, c_far=0.4e-12)
        rational = pi.as_rational()
        assert rational.total_capacitance == pytest.approx(0.5e-12)
        m = rational.moments(4)
        assert m[1] == pytest.approx(0.5e-12)
        assert m[2] == pytest.approx(-50.0 * (0.4e-12) ** 2, rel=1e-9)

    def test_describe(self):
        text = PiModel(1e-13, 50.0, 2e-13).describe()
        assert "pi-model" in text


class TestFitProperties:
    @given(
        resistance=st.floats(min_value=20.0, max_value=200.0),
        inductance_nh=st.floats(min_value=1.0, max_value=10.0),
        capacitance_pf=st.floats(min_value=0.3, max_value=2.5),
        load_ff=st.floats(min_value=0.0, max_value=300.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_fit_is_stable_and_matches_moments(self, resistance, inductance_nh,
                                               capacitance_pf, load_ff):
        line = RLCLine(resistance=resistance, inductance=nH(inductance_nh),
                       capacitance=pF(capacitance_pf), length=mm(5))
        moments = admittance_moments(line, load_ff * 1e-15)
        fit = fit_rational_admittance(moments)
        recovered = fit.moments(6)
        # Poles are always stable (the fit falls back to a lower order otherwise) ...
        assert all(pole.real < 0 for pole in fit.poles())
        # ... the first three moments always match ...
        assert np.allclose(recovered[1:4], moments[1:4], rtol=1e-5)
        # ... and when the full second-order denominator is retained, five moments match.
        if fit.b2 > 0.0:
            assert np.allclose(recovered[1:6], moments[1:6], rtol=1e-5)
