"""Charge-matching effective-capacitance equations (paper Eqs. 4-7).

The analytic expressions are validated against circuit-level charge measurements:
a realizable load whose rational admittance is known exactly is driven by the same
stimulus the equations assume, and the charge delivered by the source over the
matching window is integrated numerically.
"""

import numpy as np
import pytest

from repro.circuit import Circuit, PWLSource, TransientOptions, run_transient
from repro.core import ceff_first_ramp, ceff_second_ramp, ramp_charge, ramp_current
from repro.errors import ModelingError
from repro.interconnect import (RationalAdmittance, RLCLine, admittance_moments,
                                fit_rational_admittance)
from repro.units import mm, nH, pF, ps

VDD = 1.8


def realizable_load(c_near, resistance, inductance, c_far):
    """A port load of C_near in parallel with a series R-L-C_far branch.

    Its exact driving-point admittance is::

        Y(s) = s*C_near + s*C_far / (1 + s*R*C_far + s^2*L*C_far)

    which maps onto the paper's Eq. 3 with
        a1 = C_near + C_far, a2 = R*C_near*C_far, a3 = L*C_near*C_far,
        b1 = R*C_far,        b2 = L*C_far.
    """
    adm = RationalAdmittance(
        a1=c_near + c_far,
        a2=resistance * c_near * c_far,
        a3=inductance * c_near * c_far,
        b1=resistance * c_far,
        b2=inductance * c_far,
    )

    def build(circuit, port):
        circuit.capacitor(port, "0", c_near, name="C_near")
        circuit.resistor(port, "x1", resistance, name="R_branch")
        circuit.inductor("x1", "x2", inductance, name="L_branch")
        circuit.capacitor("x2", "0", c_far, name="C_far")

    return adm, build


def measured_charge(build_load, source_points, t_from, t_to, dt=ps(0.02)):
    """Simulate the load driven by a PWL source and integrate the delivered charge."""
    circuit = Circuit("charge_measurement")
    circuit.voltage_source("port", "0", PWLSource(source_points), name="Vsrc")
    build_load(circuit, "port")
    t_stop = max(t_to * 1.05, t_to + dt * 4)
    result = run_transient(circuit, t_stop,
                           options=TransientOptions(dt=dt, use_dc_operating_point=False))
    current = result.source_delivered_current("Vsrc")
    times = result.times
    mask = (times >= t_from) & (times <= t_to)
    return float(np.trapezoid(current[mask], times[mask]))


# Two load flavours: complex poles (inductive) and real poles (RC-like).
COMPLEX_POLE_LOAD = dict(c_near=150e-15, resistance=60.0, inductance=5e-9, c_far=900e-15)
REAL_POLE_LOAD = dict(c_near=150e-15, resistance=800.0, inductance=0.05e-9, c_far=900e-15)


class TestRampChargeAgainstCircuit:
    @pytest.mark.parametrize("load_kwargs", [COMPLEX_POLE_LOAD, REAL_POLE_LOAD],
                             ids=["complex-poles", "real-poles"])
    def test_ramp_charge_matches_simulation(self, load_kwargs):
        adm, build = realizable_load(**load_kwargs)
        tr = ps(80)
        window_end = 0.6 * tr
        # Unsaturated ramp: keep ramping past the window so the stimulus matches the
        # analytic assumption within the integration window.
        points = [(0.0, 0.0), (2 * tr, 2 * VDD)]
        simulated = measured_charge(build, points, 0.0, window_end)
        analytic = ramp_charge(adm, tr, 0.0, window_end, vdd=VDD)
        assert analytic == pytest.approx(simulated, rel=0.02)

    def test_pole_character_of_loads(self):
        complex_adm, _ = realizable_load(**COMPLEX_POLE_LOAD)
        real_adm, _ = realizable_load(**REAL_POLE_LOAD)
        assert complex_adm.has_complex_poles
        assert not real_adm.has_complex_poles


class TestCeff1:
    @pytest.mark.parametrize("load_kwargs", [COMPLEX_POLE_LOAD, REAL_POLE_LOAD],
                             ids=["complex-poles", "real-poles"])
    @pytest.mark.parametrize("fraction", [0.5, 0.65, 1.0])
    def test_matches_circuit_charge_balance(self, load_kwargs, fraction):
        """Ceff1 * f * Vdd equals the charge the real load absorbs over [0, f*Tr1]."""
        adm, build = realizable_load(**load_kwargs)
        tr1 = ps(70)
        points = [(0.0, 0.0), (2 * tr1, 2 * VDD)]
        charge = measured_charge(build, points, 0.0, fraction * tr1)
        ceff = ceff_first_ramp(adm, tr1, fraction, vdd=VDD)
        assert ceff == pytest.approx(charge / (fraction * VDD), rel=0.02)

    def test_pure_capacitor_gives_its_own_value(self):
        adm = RationalAdmittance(a1=0.5e-12, a2=0.0, a3=0.0, b1=0.0, b2=0.0)
        assert ceff_first_ramp(adm, ps(100), 0.7) == pytest.approx(0.5e-12, rel=1e-12)

    def test_shielding_reduces_effective_capacitance(self):
        """A resistively shielded far capacitance yields Ceff below the total."""
        adm, _ = realizable_load(c_near=100e-15, resistance=500.0, inductance=0.1e-9,
                                 c_far=900e-15)
        ceff = ceff_first_ramp(adm, ps(50), 1.0)
        assert ceff < adm.total_capacitance
        assert ceff > 100e-15  # but at least the near capacitance

    def test_slower_ramps_see_more_of_the_load(self):
        adm, _ = realizable_load(**REAL_POLE_LOAD)
        fast = ceff_first_ramp(adm, ps(20), 1.0)
        slow = ceff_first_ramp(adm, ps(2000), 1.0)
        assert slow > fast
        assert slow == pytest.approx(adm.total_capacitance, rel=0.05)

    def test_validation(self):
        adm, _ = realizable_load(**COMPLEX_POLE_LOAD)
        with pytest.raises(ModelingError):
            ceff_first_ramp(adm, 0.0, 0.5)
        with pytest.raises(ModelingError):
            ceff_first_ramp(adm, ps(50), 0.0)
        with pytest.raises(ModelingError):
            ceff_first_ramp(adm, ps(50), 1.2)


class TestCeff2:
    @pytest.mark.parametrize("load_kwargs", [COMPLEX_POLE_LOAD, REAL_POLE_LOAD],
                             ids=["complex-poles", "real-poles"])
    def test_matches_circuit_charge_balance(self, load_kwargs):
        """Ceff2 * (1-f) * Vdd equals the charge drawn by the real load when driven by
        the paper's extended second-ramp stimulus over the second transition window."""
        adm, build = realizable_load(**load_kwargs)
        f = 0.6
        tr1 = ps(60)
        tr2 = ps(240)
        k = 1.0 - tr1 / tr2
        # The paper's stimulus: v(t) = k*f*Vdd + Vdd*t/tr2, extended from t = 0.
        step = k * f * VDD
        rise_time = ps(0.01)
        points = [(0.0, 0.0), (rise_time, step),
                  (2 * tr2, step + 2 * VDD * (1 - rise_time / (2 * tr2)))]
        # Simpler: explicit slope Vdd/tr2 after the initial step.
        points = [(0.0, 0.0), (rise_time, step), (2 * tr2, step + VDD * 2.0)]
        t_from = f * tr1
        t_to = f * tr1 + (1 - f) * tr2
        charge = measured_charge(build, points, t_from, t_to)
        ceff2 = ceff_second_ramp(adm, tr1, tr2, f, vdd=VDD)
        assert ceff2 == pytest.approx(charge / ((1 - f) * VDD), rel=0.03)

    def test_pure_capacitor_gives_its_own_value(self):
        adm = RationalAdmittance(a1=0.8e-12, a2=0.0, a3=0.0, b1=0.0, b2=0.0)
        assert ceff_second_ramp(adm, ps(40), ps(160), 0.6) == pytest.approx(0.8e-12,
                                                                            rel=1e-12)

    def test_validation(self):
        adm, _ = realizable_load(**COMPLEX_POLE_LOAD)
        with pytest.raises(ModelingError):
            ceff_second_ramp(adm, ps(50), ps(100), 1.0)
        with pytest.raises(ModelingError):
            ceff_second_ramp(adm, ps(50), 0.0, 0.5)


class TestRampCurrent:
    def test_initial_current_of_inductive_load_is_near_capacitance_limited(self):
        adm, _ = realizable_load(**COMPLEX_POLE_LOAD)
        tr = ps(100)
        current = ramp_current(adm, tr, np.array([1e-15]), vdd=VDD)[0]
        # At t -> 0+ only the near capacitance is visible: I ~ C_near * dV/dt.
        assert current == pytest.approx(150e-15 * VDD / tr, rel=0.05)

    def test_long_time_current_approaches_total_capacitance(self):
        adm, _ = realizable_load(**REAL_POLE_LOAD)
        tr = ps(100)
        current = ramp_current(adm, tr, np.array([50 * 800.0 * 900e-15]), vdd=VDD)[0]
        assert current == pytest.approx(adm.total_capacitance * VDD / tr, rel=0.01)

    def test_validation(self):
        adm, _ = realizable_load(**COMPLEX_POLE_LOAD)
        with pytest.raises(ModelingError):
            ramp_current(adm, 0.0, np.array([1e-12]))
        with pytest.raises(ModelingError):
            ramp_charge(adm, ps(10), ps(20), ps(10))


class TestAgainstLadderMoments:
    def test_ceff_of_fitted_ladder_close_to_ladder_charge(self, line_5mm):
        """End-to-end: moments -> Eq. 3 fit -> Ceff1 stays close to the charge the
        actual ladder network absorbs (the fit only matches five moments, so the
        agreement is approximate)."""
        n_segments = 40
        moments = admittance_moments(line_5mm, 0.0, n_segments=n_segments)
        adm = fit_rational_admittance(moments)
        tr1, fraction = ps(80), 0.6

        circuit = Circuit()
        circuit.voltage_source("near", "0",
                               PWLSource([(0.0, 0.0), (2 * tr1, 2 * VDD)]), name="Vsrc")
        from repro.interconnect import add_line_ladder

        add_line_ladder(circuit, line_5mm, "near", "far", n_segments=n_segments)
        result = run_transient(circuit, fraction * tr1 * 1.05,
                               options=TransientOptions(dt=ps(0.02),
                                                        use_dc_operating_point=False))
        current = result.source_delivered_current("Vsrc")
        mask = result.times <= fraction * tr1
        charge = float(np.trapezoid(current[mask], result.times[mask]))
        ceff = ceff_first_ramp(adm, tr1, fraction, vdd=VDD)
        assert ceff == pytest.approx(charge / (fraction * VDD), rel=0.10)
