"""RLCLine transmission-line quantities and the ladder builder."""

import numpy as np
import pytest

from repro.circuit import Capacitor, Circuit, Inductor, Resistor
from repro.errors import ModelingError
from repro.interconnect import RLCLine, add_line_ladder
from repro.units import mm, nH, pF


@pytest.fixture
def paper_line():
    return RLCLine(resistance=72.44, inductance=nH(5.14), capacitance=pF(1.10),
                   length=mm(5))


class TestRLCLine:
    def test_characteristic_impedance_and_time_of_flight(self, paper_line):
        # Z0 = sqrt(L/C) ~ 68 ohm and tf = sqrt(L*C) ~ 75 ps for the Figure 1 line.
        assert paper_line.z0 == pytest.approx(np.sqrt(5.14e-9 / 1.10e-12), rel=1e-12)
        assert paper_line.z0 == pytest.approx(68.4, rel=0.01)
        assert paper_line.time_of_flight == pytest.approx(75.2e-12, rel=0.01)

    def test_damping_factor(self, paper_line):
        assert paper_line.damping_factor == pytest.approx(
            72.44 / (2 * paper_line.z0), rel=1e-12)
        assert paper_line.damping_factor < 1.0  # under-damped: inductive regime

    def test_positive_values_required(self):
        with pytest.raises(ModelingError):
            RLCLine(resistance=0.0, inductance=1e-9, capacitance=1e-12)
        with pytest.raises(ModelingError):
            RLCLine(resistance=1.0, inductance=1e-9, capacitance=1e-12, length=-1.0)

    def test_per_length_accessors_require_length(self):
        line = RLCLine(resistance=10.0, inductance=1e-9, capacitance=1e-13)
        with pytest.raises(ModelingError):
            _ = line.resistance_per_length

    def test_per_length_accessors(self, paper_line):
        assert paper_line.resistance_per_length == pytest.approx(72.44 / 5e-3)
        assert paper_line.capacitance_per_length == pytest.approx(1.10e-12 / 5e-3)

    def test_segment_values_divide_totals(self, paper_line):
        r, l, c = paper_line.segment_values(10)
        assert r == pytest.approx(7.244)
        assert l == pytest.approx(0.514e-9)
        assert c == pytest.approx(0.11e-12)
        with pytest.raises(ModelingError):
            paper_line.segment_values(0)

    def test_recommended_segments_scales_with_length(self):
        short = RLCLine(10.0, 1e-9, 1e-13, length=mm(1)).recommended_segments()
        long = RLCLine(70.0, 7e-9, 7e-13, length=mm(7)).recommended_segments()
        assert long > short
        assert short >= 30

    def test_recommended_segments_without_length(self):
        line = RLCLine(10.0, 1e-9, 1e-13)
        assert line.recommended_segments() >= 30

    def test_scaled(self, paper_line):
        doubled = paper_line.scaled(2.0)
        assert doubled.resistance == pytest.approx(2 * paper_line.resistance)
        assert doubled.length == pytest.approx(2 * paper_line.length)
        # Z0 is invariant under uniform length scaling, tf doubles.
        assert doubled.z0 == pytest.approx(paper_line.z0)
        assert doubled.time_of_flight == pytest.approx(2 * paper_line.time_of_flight)

    def test_describe(self, paper_line):
        text = paper_line.describe()
        assert "5.00mm" in text and "Z0" in text

    def test_from_per_unit_length(self):
        from repro.interconnect import LineParasitics

        line = RLCLine.from_per_unit_length(LineParasitics(14.5e3, 1.0e-6, 0.22e-9),
                                            mm(5))
        assert line.resistance == pytest.approx(72.5)
        assert line.length == pytest.approx(5e-3)


class TestLadderBuilder:
    def test_element_counts(self, paper_line):
        circuit = Circuit()
        circuit.voltage_source("near", "0", 0.0, name="V1")
        nodes = add_line_ladder(circuit, paper_line, "near", "far", n_segments=20)
        assert len(nodes) == 21
        assert len(circuit.elements_of_type(Resistor)) == 20
        assert len(circuit.elements_of_type(Inductor)) == 20
        # n-1 interior full caps + 2 half caps at the ends.
        assert len(circuit.elements_of_type(Capacitor)) == 21

    def test_totals_preserved(self, paper_line):
        circuit = Circuit()
        circuit.voltage_source("near", "0", 0.0, name="V1")
        add_line_ladder(circuit, paper_line, "near", "far", n_segments=17)
        total_r = sum(r.resistance for r in circuit.elements_of_type(Resistor))
        total_l = sum(l.inductance for l in circuit.elements_of_type(Inductor))
        total_c = sum(c.capacitance for c in circuit.elements_of_type(Capacitor))
        assert total_r == pytest.approx(paper_line.resistance, rel=1e-12)
        assert total_l == pytest.approx(paper_line.inductance, rel=1e-12)
        assert total_c == pytest.approx(paper_line.capacitance, rel=1e-12)

    def test_single_segment_ladder(self, paper_line):
        circuit = Circuit()
        circuit.voltage_source("near", "0", 0.0, name="V1")
        nodes = add_line_ladder(circuit, paper_line, "near", "far", n_segments=1)
        assert nodes == ["near", "far"]

    def test_same_near_and_far_node_rejected(self, paper_line):
        circuit = Circuit()
        with pytest.raises(ModelingError):
            add_line_ladder(circuit, paper_line, "a", "a", n_segments=5)

    def test_unique_prefixes_allow_multiple_lines(self, paper_line):
        circuit = Circuit()
        circuit.voltage_source("n1", "0", 0.0, name="V1")
        add_line_ladder(circuit, paper_line, "n1", "n2", n_segments=5, prefix="net1")
        add_line_ladder(circuit, paper_line, "n2", "n3", n_segments=5, prefix="net2")
        assert "net1_r0" in circuit and "net2_r0" in circuit
