"""Technology definitions and inverter specs."""

import pytest

from repro.errors import ModelingError
from repro.tech import InverterSpec, add_inverter, generic_180nm
from repro.circuit import Circuit, Mosfet, Capacitor


class TestTechnology:
    def test_generic_180nm_headline_values(self, tech):
        assert tech.vdd == pytest.approx(1.8)
        assert tech.lmin == pytest.approx(0.18e-6)
        assert tech.nmos.polarity == "nmos"
        assert tech.pmos.polarity == "pmos"

    def test_driver_size_convention_matches_paper(self, tech):
        # "driver size 75X means the NMOS width is 75 times the minimum width (=2*Lmin=0.36u)"
        assert tech.nmos_width(75) == pytest.approx(27e-6)
        assert tech.pmos_width(75) == pytest.approx(54e-6)

    def test_invalid_size_rejected(self, tech):
        with pytest.raises(ModelingError):
            tech.nmos_width(0)

    def test_input_capacitance_scales_linearly(self, tech):
        assert tech.inverter_input_capacitance(100) == pytest.approx(
            2.0 * tech.inverter_input_capacitance(50), rel=1e-9)

    def test_with_supply(self, tech):
        lowered = tech.with_supply(1.2)
        assert lowered.vdd == pytest.approx(1.2)
        assert lowered.nmos is tech.nmos

    def test_invalid_supply_rejected(self):
        tech = generic_180nm()
        with pytest.raises(ModelingError):
            tech.with_supply(-1.0)


class TestInverterSpec:
    def test_widths_and_capacitance(self, tech):
        spec = InverterSpec(tech=tech, size=75)
        assert spec.nmos_width == pytest.approx(27e-6)
        assert spec.pmos_width == pytest.approx(54e-6)
        assert spec.input_capacitance == pytest.approx(
            tech.inverter_input_capacitance(75))
        assert spec.output_parasitic_capacitance > 0

    def test_size_must_be_positive(self, tech):
        with pytest.raises(ModelingError):
            InverterSpec(tech=tech, size=0)

    def test_estimated_resistance_decreases_with_size(self, tech):
        small = InverterSpec(tech=tech, size=25).estimated_resistance()
        large = InverterSpec(tech=tech, size=100).estimated_resistance()
        assert large == pytest.approx(small / 4.0, rel=1e-6)

    def test_describe_mentions_widths(self, tech):
        text = InverterSpec(tech=tech, size=75).describe()
        assert "75" in text and "27.00" in text


class TestAddInverter:
    def test_instantiates_two_transistors_and_parasitics(self, tech):
        circuit = Circuit()
        circuit.voltage_source("vdd", "0", tech.vdd, name="Vdd")
        circuit.voltage_source("a", "0", 0.0, name="Vin")
        add_inverter(circuit, InverterSpec(tech=tech, size=40), "a", "y")
        mosfets = circuit.elements_of_type(Mosfet)
        assert len(mosfets) == 2
        polarities = {m.params.polarity for m in mosfets}
        assert polarities == {"nmos", "pmos"}
        # Parasitic capacitors: gate, Miller, two drain junctions.
        assert len(circuit.elements_of_type(Capacitor)) == 4

    def test_distinct_name_prefixes_allow_multiple_instances(self, tech):
        circuit = Circuit()
        circuit.voltage_source("vdd", "0", tech.vdd, name="Vdd")
        circuit.voltage_source("a", "0", 0.0, name="Vin")
        add_inverter(circuit, InverterSpec(tech=tech, size=10), "a", "y1",
                     name_prefix="u1")
        add_inverter(circuit, InverterSpec(tech=tech, size=10), "y1", "y2",
                     name_prefix="u2")
        assert "u1_mn" in circuit and "u2_mn" in circuit
