"""Circuit container and element construction."""

import pytest

from repro.circuit import (Capacitor, Circuit, CurrentSource, Inductor, Resistor,
                           VoltageSource)
from repro.errors import CircuitError


class TestElementConstruction:
    def test_resistor_requires_positive_resistance(self):
        with pytest.raises(CircuitError):
            Resistor("R1", "a", "b", 0.0)
        with pytest.raises(CircuitError):
            Resistor("R1", "a", "b", -5.0)

    def test_resistor_conductance(self):
        assert Resistor("R1", "a", "b", 50.0).conductance == pytest.approx(0.02)

    def test_capacitor_allows_zero_but_not_negative(self):
        Capacitor("C0", "a", "0", 0.0)
        with pytest.raises(CircuitError):
            Capacitor("C1", "a", "0", -1e-15)

    def test_inductor_requires_positive_inductance(self):
        with pytest.raises(CircuitError):
            Inductor("L1", "a", "b", 0.0)

    def test_element_requires_name(self):
        with pytest.raises(CircuitError):
            Resistor("", "a", "b", 1.0)

    def test_two_terminal_accessors(self):
        resistor = Resistor("R1", "in", "out", 10.0)
        assert resistor.node_pos == "in"
        assert resistor.node_neg == "out"
        assert resistor.nodes == ("in", "out")

    def test_branch_current_flags(self):
        assert Inductor("L1", "a", "b", 1e-9).needs_branch_current
        assert VoltageSource("V1", "a", "0", 1.0).needs_branch_current
        assert not Resistor("R1", "a", "b", 1.0).needs_branch_current
        assert not CurrentSource("I1", "a", "0", 1.0).needs_branch_current


class TestCircuit:
    def test_auto_naming_is_unique(self):
        circuit = Circuit()
        r1 = circuit.resistor("a", "0", 10.0)
        r2 = circuit.resistor("b", "0", 20.0)
        assert r1.name != r2.name
        assert len(circuit) == 2

    def test_duplicate_names_rejected(self):
        circuit = Circuit()
        circuit.resistor("a", "0", 10.0, name="R1")
        with pytest.raises(CircuitError):
            circuit.resistor("b", "0", 10.0, name="R1")

    def test_element_lookup(self):
        circuit = Circuit()
        circuit.capacitor("out", "0", 1e-12, name="Cload")
        assert circuit.element("Cload").capacitance == pytest.approx(1e-12)
        assert "Cload" in circuit
        with pytest.raises(CircuitError):
            circuit.element("missing")

    def test_node_tracking_excludes_ground(self):
        circuit = Circuit()
        circuit.resistor("a", "b", 1.0)
        circuit.capacitor("b", "0", 1e-15)
        assert set(circuit.node_names) == {"a", "b"}
        assert circuit.has_node("0")

    def test_elements_of_type(self):
        circuit = Circuit()
        circuit.resistor("a", "0", 1.0)
        circuit.resistor("b", "0", 2.0)
        circuit.capacitor("a", "0", 1e-15)
        assert len(circuit.elements_of_type(Resistor)) == 2
        assert len(circuit.elements_of_type(Capacitor)) == 1

    def test_is_linear_flag(self, tech):
        circuit = Circuit()
        circuit.resistor("a", "0", 1.0)
        assert circuit.is_linear
        circuit.mosfet("a", "g", "0", tech.nmos, 1e-6)
        assert not circuit.is_linear

    def test_connected_elements(self):
        circuit = Circuit()
        r = circuit.resistor("a", "b", 1.0)
        c = circuit.capacitor("b", "0", 1e-15)
        assert r in circuit.connected_elements("a")
        assert set(circuit.connected_elements("b")) == {r, c}

    def test_validate_requires_ground_reference(self):
        circuit = Circuit()
        circuit.resistor("a", "b", 1.0)
        with pytest.raises(CircuitError):
            circuit.validate()

    def test_validate_requires_elements(self):
        with pytest.raises(CircuitError):
            Circuit().validate()

    def test_summary_counts_elements(self):
        circuit = Circuit("demo")
        circuit.resistor("a", "0", 1.0)
        circuit.capacitor("a", "0", 1e-15)
        text = circuit.summary()
        assert "demo" in text
        assert "Resistor" in text and "Capacitor" in text

    def test_empty_node_name_rejected(self):
        circuit = Circuit()
        with pytest.raises(CircuitError):
            circuit.resistor("", "0", 1.0)
