"""The top-level modeling flow (Section 5) and the far-end propagation."""

import pytest

from repro.baselines import (half_charge_ceff_model, rc_equivalent_line,
                             rc_pi_baseline, single_ceff_model,
                             total_capacitance_model)
from repro.core import ModelingOptions, far_end_response, model_driver_output
from repro.errors import ModelingError
from repro.interconnect import RLCLine
from repro.units import fF, mm, nH, pF, ps, to_ps


@pytest.fixture(scope="module")
def weak_line():
    """The paper's Figure 6 weak-driver case line (4 mm / 1.6 um)."""
    return RLCLine(resistance=58.0, inductance=nH(4.13), capacitance=pF(0.884),
                   length=mm(4))


class TestModelSelection:
    def test_strong_driver_selects_two_ramp(self, cell75, line_5mm):
        model = model_driver_output(cell75, ps(100), line_5mm)
        assert model.is_two_ramp
        assert model.kind == "two-ramp"
        assert model.inductance_report.significant

    def test_weak_driver_selects_single_ramp(self, cell25, weak_line):
        model = model_driver_output(cell25, ps(100), weak_line)
        assert not model.is_two_ramp
        assert model.kind == "single-ramp"
        assert not model.inductance_report.significant

    def test_heavy_fanout_defeats_inductance(self, cell75, line_5mm):
        model = model_driver_output(cell75, ps(100), line_5mm, load_capacitance=pF(1.5))
        assert not model.is_two_ramp

    def test_force_flags(self, cell75, cell25, line_5mm, weak_line):
        forced_two = model_driver_output(cell25, ps(100), weak_line,
                                         options=ModelingOptions(force_two_ramp=True))
        assert forced_two.is_two_ramp
        forced_one = model_driver_output(cell75, ps(100), line_5mm,
                                         options=ModelingOptions(force_single_ramp=True))
        assert not forced_one.is_two_ramp

    def test_conflicting_force_flags_rejected(self):
        with pytest.raises(ModelingError):
            ModelingOptions(force_two_ramp=True, force_single_ramp=True)

    def test_input_validation(self, cell75, line_5mm):
        with pytest.raises(ModelingError):
            model_driver_output(cell75, 0.0, line_5mm)
        with pytest.raises(ModelingError):
            model_driver_output(cell75, ps(100), line_5mm, load_capacitance=-1e-15)
        with pytest.raises(ModelingError):
            ModelingOptions(transition="sideways")


class TestTwoRampQuantities:
    @pytest.fixture(scope="class")
    def model(self, cell75, line_5mm):
        return model_driver_output(cell75, ps(100), line_5mm)

    def test_breakpoint_matches_equation_1(self, model):
        expected = model.characteristic_impedance / (
            model.characteristic_impedance + model.driver_resistance)
        assert model.breakpoint_fraction == pytest.approx(expected, rel=1e-12)
        # Strong driver: the initial step exceeds half the supply (paper Sec. 3).
        assert model.breakpoint_fraction > 0.5

    def test_ceff1_is_shielded_below_total(self, model):
        assert model.ceff1 < model.total_capacitance
        assert model.ceff1 > 0.1 * model.total_capacitance

    def test_tr2_effective_includes_plateau(self, model):
        assert model.tr2_effective > model.tr2
        assert model.plateau == pytest.approx(
            max(0.0, 2 * model.time_of_flight - model.tr1))

    def test_delay_is_anchored_to_cell_table(self, model, cell75):
        assert model.delay() == pytest.approx(
            cell75.delay(ps(100), model.ceff1), rel=1e-9)
        assert model.gate_delay == pytest.approx(model.delay(), rel=1e-9)

    def test_waveform_crosses_breakpoint(self, model):
        waveform = model.two_ramp()
        assert waveform.breakpoint_voltage == pytest.approx(
            model.breakpoint_fraction * model.vdd)
        assert waveform.value(waveform.breakpoint_time) == pytest.approx(
            waveform.breakpoint_voltage, rel=1e-9)

    def test_slew_exceeds_single_ramp_estimate(self, model, cell75):
        """The inductive tail makes the modeled transition much slower than what the
        table would predict at the same effective capacitance."""
        naive = 0.8 * cell75.ramp_time(ps(100), model.ceff1)
        assert model.slew() > 1.5 * naive

    def test_plateau_correction_can_be_disabled(self, cell75, line_5mm):
        without = model_driver_output(cell75, ps(100), line_5mm,
                                      options=ModelingOptions(plateau_correction=False))
        assert without.tr2_effective == pytest.approx(without.tr2)

    def test_reference_time_shifts_everything(self, cell75, line_5mm):
        shifted = model_driver_output(cell75, ps(100), line_5mm,
                                      options=ModelingOptions(reference_time=ps(500)))
        base = model_driver_output(cell75, ps(100), line_5mm)
        assert shifted.delay() == pytest.approx(base.delay(), rel=1e-9)
        assert shifted.two_ramp().t_start == pytest.approx(
            base.two_ramp().t_start + ps(500), rel=1e-9)

    def test_fall_transition_produces_falling_waveform(self, cell75, line_5mm):
        model = model_driver_output(cell75, ps(100), line_5mm,
                                    options=ModelingOptions(transition="fall"))
        waveform = model.two_ramp()
        assert waveform.value(waveform.t_start - ps(1)) == pytest.approx(model.vdd)
        assert waveform.value(waveform.end_time + ps(50)) == pytest.approx(0.0)
        assert model.delay() > 0

    def test_describe_mentions_both_ceffs(self, model):
        text = model.describe()
        assert "Ceff1" in text and "Ceff2" in text


class TestSingleRampQuantities:
    def test_single_ramp_uses_full_charge_window(self, cell25, weak_line):
        model = model_driver_output(cell25, ps(100), weak_line)
        assert model.ceff2 is None
        assert model.tr2 is None
        assert model.plateau == 0.0
        # Shielding is mild for this resistive case: Ceff close to but below total.
        assert 0.5 * model.total_capacitance < model.ceff1 <= model.total_capacitance

    def test_single_ramp_slew_matches_table_ramp(self, cell25, weak_line):
        model = model_driver_output(cell25, ps(100), weak_line)
        expected = 0.8 * cell25.ramp_time(ps(100), model.ceff1)
        assert model.slew() == pytest.approx(expected, rel=1e-6)


class TestFarEnd:
    def test_far_end_of_two_ramp_model(self, cell75, line_5mm):
        model = model_driver_output(cell75, ps(100), line_5mm, load_capacitance=fF(20))
        response = far_end_response(model)
        assert response.far_delay() > model.delay()
        # The wire adds at least one time of flight.
        assert response.interconnect_delay() > 0.8 * line_5mm.time_of_flight
        assert response.far.v_final == pytest.approx(model.vdd, rel=0.05)

    def test_far_end_slew_is_positive_and_finite(self, cell75, line_5mm):
        model = model_driver_output(cell75, ps(100), line_5mm)
        response = far_end_response(model)
        assert 0 < response.far_slew() < ps(1000)


class TestBaselines:
    def test_single_ceff_exceeds_half_charge_ceff(self, cell75, line_5mm):
        """Figure 3: equating charge only to the 50% point sees less of the load than
        equating over the full transition."""
        full = single_ceff_model(cell75, ps(100), line_5mm)
        half = half_charge_ceff_model(cell75, ps(100), line_5mm)
        assert full.kind == "single-ramp" and half.kind == "single-ramp"
        assert full.ceff1 > 1.02 * half.ceff1

    def test_total_capacitance_model_uses_total(self, cell75, line_5mm):
        model = total_capacitance_model(cell75, ps(100), line_5mm, fF(30))
        assert model.ceff1 == pytest.approx(line_5mm.capacitance + fF(30), rel=1e-3)
        assert model.kind == "single-ramp"
        assert model.delay() > 0

    def test_one_ramp_baseline_overestimates_delay_vs_two_ramp(self, cell75, line_5mm):
        """The paper's Table 1 pattern: the single-Ceff delay is far larger because it
        misses the fast inductive initial step."""
        two_ramp = model_driver_output(cell75, ps(100), line_5mm)
        one_ramp = single_ceff_model(cell75, ps(100), line_5mm)
        assert one_ramp.delay() > 1.3 * two_ramp.delay()
        assert one_ramp.slew() < two_ramp.slew()

    def test_rc_pi_baseline_on_rc_line(self, cell75):
        rc_line = RLCLine(resistance=101.3, inductance=nH(0.001), capacitance=pF(1.54),
                          length=mm(7))
        baseline = rc_pi_baseline(cell75, ps(100), rc_line)
        assert 0 < baseline.ceff < rc_line.capacitance
        assert baseline.gate_delay > 0
        assert "pi" in baseline.describe()

    def test_rc_pi_baseline_ignores_inductance(self, cell75, line_5mm):
        baseline = rc_pi_baseline(cell75, ps(100), line_5mm)
        rc_only = rc_pi_baseline(cell75, ps(100), rc_equivalent_line(line_5mm))
        assert baseline.ceff == pytest.approx(rc_only.ceff, rel=1e-6)

    def test_rc_equivalent_line_preserves_rc(self, line_5mm):
        rc_line = rc_equivalent_line(line_5mm)
        assert rc_line.resistance == line_5mm.resistance
        assert rc_line.capacitance == line_5mm.capacitance
        assert rc_line.inductance < 1e-3 * line_5mm.inductance
