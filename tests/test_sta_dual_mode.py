"""Dual-mode (setup + hold) analysis: two event planes over one set of solves.

The contract the min/max refactor has to honor:

* the late plane is bit-identical to what the late-only engine produced (the
  existing suites enforce that); the early plane rides along — min-arrival
  merge with the smaller-slew tie-break, mirroring the late merge,
* dual-mode analysis performs **zero additional stage solves** over late-only
  (delay/slew solves are mode-independent; only merges and the backward pass
  differ),
* hold required times propagate as the max-required mirror of the setup
  min-required pass, seeded by ``set_required(..., mode="hold")`` pins and the
  clock's ``hold_margin``, and
* for every event, early arrival <= late arrival, and hold slack is finite
  exactly when a hold constraint reaches that event (the property test below
  drives random DAGs through both checks).
"""

import random

import pytest

from repro.core import StageSolver
from repro.errors import ModelingError
from repro.experiments import parallel_chains, race_graph, reconvergent_graph
from repro.interconnect import RLCLine
from repro.sta import GraphEngine, GraphNet, PrimaryInput, TimingGraph
from repro.units import mm, nH, pF, ps

LIBRARY_SIZES = (25.0, 50.0, 75.0, 100.0, 125.0)


@pytest.fixture(scope="module")
def lines():
    """Two cheap-to-solve line flavors (short wires keep the test quick)."""
    return [RLCLine(resistance=20.0, inductance=nH(1.05), capacitance=pF(0.22),
                    length=mm(1)),
            RLCLine(resistance=38.0, inductance=nH(2.1), capacitance=pF(0.42),
                    length=mm(2))]


@pytest.fixture(scope="module")
def solver():
    """One memo shared by every engine in this module (results are memo-safe)."""
    return StageSolver()


@pytest.fixture(scope="module")
def engine(library, solver):
    return GraphEngine(library=library, solver=solver)


def same_parity_diamond(line):
    """The minimal early/late-split workload (shared with the CLI's --case race)."""
    return race_graph(line=line)


class TestEarlyPlane:
    def test_single_path_early_equals_late(self, engine, lines):
        graph = parallel_chains(1, 3, lines=[lines[0]], input_slew=ps(100))
        report = engine.analyze(graph)
        for per_net in report.events.values():
            for event in per_net.values():
                assert event.early_input_arrival == event.input_arrival
                assert event.early_output_arrival == event.output_arrival
                assert event.early_source == event.source

    def test_reconvergence_splits_the_planes(self, engine, lines):
        graph = same_parity_diamond(lines[0])
        report = engine.analyze(graph)
        sink = report.events["sink"]
        assert set(sink) == {"rise"}  # both branches deliver the same edge
        event = sink["rise"]
        assert event.early_output_arrival < event.output_arrival
        assert event.source == ("slow", "fall")
        assert event.early_source == ("fast", "fall")
        # The early plane rides the same solution: one solve, two arrivals.
        assert (event.output_arrival - event.input_arrival
                == event.early_output_arrival - event.early_input_arrival)
        assert report.early_arrival("sink") < report.arrival("sink")

    def test_early_arrival_takes_the_minimum_over_events(self, engine, lines):
        # The diamond sink carries two events (rise and fall); the net-level
        # early arrival must be the best case over them, not the early value
        # of the worst-late event.
        graph = reconvergent_graph(line=lines[0])
        report = engine.analyze(graph)
        events = report.events["sink"].values()
        assert report.early_arrival("sink") == min(
            event.early_output_arrival for event in events)
        assert report.early_arrival("sink") < report.arrival("sink")
        for transition, event in report.events["sink"].items():
            assert (report.early_arrival("sink", transition)
                    == event.early_output_arrival)
        with pytest.raises(ModelingError):
            report.early_arrival("nonexistent")

    def test_dual_mode_adds_zero_stage_solves(self, library, lines):
        """Late-only and dual-mode analyses issue identical solver traffic."""
        late_solver, dual_solver = StageSolver(), StageSolver()
        late_graph = reconvergent_graph(line=lines[0])
        late_graph.set_clock_period(ps(600))
        dual_graph = reconvergent_graph(line=lines[0])
        dual_graph.set_clock_period(ps(600), hold_margin=ps(100))
        GraphEngine(library=library, solver=late_solver).analyze(late_graph)
        GraphEngine(library=library, solver=dual_solver).analyze(dual_graph)
        assert dual_solver.stats.computed == late_solver.stats.computed
        assert dual_solver.stats.requests == late_solver.stats.requests


class TestHoldConstraints:
    def test_constraint_validation(self, lines):
        graph = same_parity_diamond(lines[0])
        with pytest.raises(ModelingError):
            graph.set_clock_period(ps(500), hold_margin=-ps(1))
        with pytest.raises(ModelingError):
            graph.set_required("sink", ps(100), mode="race")
        with pytest.raises(ModelingError):
            graph.required_for("sink", "rise", mode="race")

    def test_hold_margin_constrains_every_endpoint(self, engine, lines):
        graph = parallel_chains(2, 2, lines=[lines[0]], input_slew=ps(100))
        graph.set_clock_period(ps(800), hold_margin=ps(60))
        report = engine.analyze(graph)
        for name in ("c0s1", "c1s1"):
            event = report.event(name)
            assert event.hold_required == ps(60)
            assert event.hold_slack == event.early_output_arrival - ps(60)
            assert event.required == ps(800)  # setup still in force
        # Mid-chain hold requirements propagate backward through stage delays.
        head = report.event("c0s0")
        tail = report.event("c0s1")
        assert head.hold_required == ps(60) - tail.solution.stage_delay

    def test_hold_pin_and_violation(self, engine, lines):
        graph = same_parity_diamond(lines[0])
        # Pin an aggressive minimum on the sink: the fast branch violates it.
        graph.set_required("sink", ps(400), mode="hold")
        report = engine.analyze(graph)
        event = report.events["sink"]["rise"]
        assert event.hold_required == ps(400)
        assert event.hold_slack == event.early_output_arrival - ps(400)
        assert event.hold_slack < 0
        assert report.worst_hold_slack == event.hold_slack
        assert report.whs == event.hold_slack
        assert report.wns is None  # no setup constraint in force
        # The worst hold path follows the early plane through the fast branch.
        hold_path = [e.net.name for e in report.slack_path(mode="hold")]
        assert hold_path == ["root", "fast", "sink"]

    def test_clock_replaces_hold_margin(self, engine, lines):
        graph = parallel_chains(1, 2, lines=[lines[0]], input_slew=ps(100))
        graph.set_clock_period(ps(800), hold_margin=ps(60))
        assert graph.hold_margin == ps(60)
        assert graph.hold_constrained
        graph.set_clock_period(ps(800))  # margin not repeated: check removed
        assert graph.hold_margin is None
        assert not graph.hold_constrained
        report = engine.analyze(graph)
        assert report.event("c0s1").hold_required is None
        assert report.whs is None

    def test_mode_gates_the_backward_pass(self, engine, lines):
        graph = same_parity_diamond(lines[0])
        graph.set_clock_period(ps(600), hold_margin=ps(50))
        both = engine.analyze(graph)
        setup_only = engine.analyze(graph, mode="setup")
        hold_only = engine.analyze(graph, mode="hold")
        with pytest.raises(ModelingError):
            engine.analyze(graph, mode="race")
        event = both.events["sink"]["rise"]
        assert event.required is not None and event.hold_required is not None
        setup_event = setup_only.events["sink"]["rise"]
        assert setup_event.required == event.required
        assert setup_event.hold_required is None
        hold_event = hold_only.events["sink"]["rise"]
        assert hold_event.required is None
        assert hold_event.hold_required == event.hold_required
        # The arrival planes are identical regardless of mode.
        for name, per_net in both.events.items():
            for transition, reference in per_net.items():
                for other in (setup_only, hold_only):
                    got = other.events[name][transition]
                    assert got.output_arrival == reference.output_arrival
                    assert (got.early_output_arrival
                            == reference.early_output_arrival)

    def test_hold_slack_queries(self, engine, lines):
        graph = same_parity_diamond(lines[0])
        graph.set_clock_period(ps(600), hold_margin=ps(50))
        report = engine.analyze(graph)
        assert report.slack("sink", mode="hold") == \
            report.events["sink"]["rise"].hold_slack
        assert report.required("sink", mode="hold") == ps(50)
        worst = report.worst_slack_event(mode="hold")
        assert worst.net.name == "sink"
        ordered = report.endpoint_events(mode="hold")
        slacks = [e.hold_slack for e in ordered if e.hold_slack is not None]
        assert slacks == sorted(slacks)

    def test_unconstrained_hold_queries_raise_or_none(self, engine, lines):
        graph = same_parity_diamond(lines[0])
        report = engine.analyze(graph)
        assert report.slack("sink", mode="hold") is None
        assert report.worst_hold_slack is None
        with pytest.raises(ModelingError):
            report.worst_slack_event(mode="hold")


def random_dag(rng, lines, *, n_nets, n_roots=2):
    """A random layered DAG over the shipped library sizes.

    Net ``i`` (past the roots) draws 1-2 fanins from earlier nets, so the
    graph is acyclic by construction; a random subset of nets carries a
    terminal receiver (making some of them endpoints even with fanout).
    """
    specs = []  # (driver_size, line, fanout:list, receiver)
    for i in range(n_nets):
        receiver = rng.choice([None, None, 25.0, 50.0])
        specs.append([rng.choice(LIBRARY_SIZES), rng.choice(lines), [],
                      receiver])
        if i >= n_roots:
            for fanin in rng.sample(range(i), k=min(i, rng.choice([1, 2]))):
                specs[fanin][2].append(f"n{i}")
    nets = []
    for i, (size, line, fanout, receiver) in enumerate(specs):
        if receiver is None and not fanout:
            receiver = 25.0  # keep sinks terminated (and endpoints)
        nets.append(GraphNet(f"n{i}", size, line, fanout=tuple(fanout),
                             receiver_size=receiver))
    inputs = {net.name: PrimaryInput(
        slew=rng.choice([ps(60), ps(100), ps(140)]),
        transition=rng.choice(["rise", "fall"]))
        for net in nets if not any(net.name in s[2] for s in specs)}
    return TimingGraph(nets, inputs)


def expected_hold_reach(graph, report):
    """(net, input transition) -> whether a hold constraint reaches the event.

    Independent boolean fixpoint over the event DAG: an event is hold-
    constrained when its own far-end edge carries a hold seed, or when any
    fanout consumer of its propagated edge is.  No arithmetic — this checks
    reachability only, which is exactly what "hold slack is finite" claims.
    """
    reach = {}
    for level in reversed(report.levels):
        for name in level:
            for transition, event in report.events.get(name, {}).items():
                out = event.output_transition
                finite = graph.required_for(name, out, mode="hold") is not None
                for target in event.net.fanout:
                    if (target, out) in reach and reach[(target, out)]:
                        finite = True
                reach[(name, transition)] = finite
    return reach


class TestDualModeProperty:
    @pytest.mark.parametrize("seed", [11, 23, 47])
    def test_early_le_late_and_hold_reachability(self, library, solver, lines,
                                                 seed):
        rng = random.Random(seed)
        graph = random_dag(rng, lines, n_nets=rng.choice([7, 9, 11]))
        # Random hold landscape: maybe a margin, plus a few explicit pins.
        if rng.random() < 0.7:
            graph.set_clock_period(ps(700),
                                   hold_margin=rng.choice([0.0, ps(40)]))
        for name in rng.sample(sorted(graph.nets), k=2):
            graph.set_required(name, rng.choice([ps(30), ps(90)]),
                               transition=rng.choice([None, "rise", "fall"]),
                               mode="hold")
        report = GraphEngine(library=library, solver=solver).analyze(graph)
        assert report.n_events > 0
        reach = expected_hold_reach(graph, report)
        for name, per_net in report.events.items():
            for transition, event in per_net.items():
                # Early plane never overtakes the late plane...
                assert event.early_output_arrival <= event.output_arrival
                assert event.early_input_arrival <= event.input_arrival
                # ...and hold slack is finite exactly when a hold constraint
                # reaches this event through the fanout DAG.
                assert ((event.hold_slack is not None)
                        == reach[(name, transition)])
                assert ((event.hold_required is None)
                        == (event.hold_slack is None))
