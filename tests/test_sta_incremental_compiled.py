"""CompiledIncrementalEngine: dirty-cone sweeps on the CSR tier, bit for bit.

The acceptance property, mirroring ``test_sta_incremental`` one tier up: after
*any* interleaving of parametric, constraint and structural edits, a compiled
incremental update must equal — exactly, in every plane — both

* a from-scratch compiled sweep of the same graph state (same engine, same
  memoized solver: identical fingerprints answer with identical solutions, so
  nothing short of bitwise equality is acceptable), and
* the object ``IncrementalEngine`` oracle driven through the same edits.

Alongside the property, this file pins the in-place patching contract
(:meth:`CompiledGraph.patch` equals a fresh compile; topology drift is
rejected), the session-cache fixes of this PR (constraint-only edit batches
never recompile; the single-slot compiled cache holds its graph weakly), the
streaming report's cone-bounded record reuse, and the jobs>1 interaction
(warm cone updates never touch the worker pools).
"""

import gc
import random
import weakref

import numpy as np
import pytest
from test_sta_compiled import shared_session
from test_sta_dual_mode import random_dag
from test_sta_incremental import random_edit

from repro.api import SessionConfig, StreamingTimingReport, TimingSession
from repro.core import StageSolver
from repro.errors import ModelingError
from repro.experiments import soc_graph
from repro.interconnect import RLCLine
from repro.sta import GraphEngine, IncrementalEngine
from repro.sta.incremental_compiled import CompiledIncrementalEngine
from repro.units import fF, mm, nH, pF, ps


@pytest.fixture(scope="module")
def lines():
    """Two cheap-to-solve line flavors (short wires keep the test quick)."""
    return [RLCLine(resistance=20.0, inductance=nH(1.05), capacitance=pF(0.22),
                    length=mm(1)),
            RLCLine(resistance=38.0, inductance=nH(2.1), capacitance=pF(0.42),
                    length=mm(2))]


@pytest.fixture(scope="module")
def solver():
    """One memo shared by every engine in this module (results are memo-safe)."""
    return StageSolver()


#: Every per-event plane except ``sol_idx``, which indexes the producing
#: engine's append-only solution list and is compared by content instead.
PLANES = ("exists", "in_arr", "early_in", "merged_slew", "in_slew",
          "src", "early_src", "out_arr", "early_out", "delay", "prop_slew")


def assert_analyses_identical(incremental, full):
    """Two compiled analyses of the same graph state are exactly equal."""
    for name in PLANES:
        ours, theirs = getattr(incremental.state, name), getattr(full.state, name)
        assert np.array_equal(ours, theirs), f"plane {name} diverged"
    for event in np.flatnonzero(incremental.state.exists).tolist():
        ours = incremental.solutions[incremental.state.sol_idx[event]]
        theirs = full.solutions[full.state.sol_idx[event]]
        assert ours.fingerprint == theirs.fingerprint
    assert np.array_equal(incremental.required, full.required, equal_nan=True)
    assert np.array_equal(incremental.hold_required, full.hold_required,
                          equal_nan=True)


def assert_matches_object_oracle(analysis, report, mode):
    """Compiled events equal the object engine's, per the enabled polarities."""
    with_events = set(analysis.net_names_with_events())
    assert with_events == set(report.events)
    for name, per_net in report.events.items():
        ours = analysis.events_of(name)
        assert set(ours) == set(per_net)
        for transition, event in per_net.items():
            mine = ours[transition]
            assert mine.input_arrival == event.input_arrival
            assert mine.input_slew == event.input_slew
            assert mine.output_arrival == event.output_arrival
            assert mine.source == event.source
            assert mine.early_arrival == event.early_output_arrival
            assert mine.early_source == event.early_source
            assert mine.fingerprint == event.solution.fingerprint
            if mode in ("setup", "both"):
                assert mine.required == event.required
            if mode in ("hold", "both"):
                assert mine.hold_required == event.hold_required


def refresh_snapshot(engine, graph, cg):
    """The session's patch-vs-recompile decision, inlined for direct drives."""
    if cg is None or cg.topology_version != graph.topology_version:
        return engine.compile(graph)
    if cg.version != graph.version:
        cg.patch(graph, library=engine.library, tech=engine.tech)
    return cg


class TestPatch:
    def test_patch_matches_fresh_compile(self, library, solver, lines):
        rng = random.Random(5)
        graph = random_dag(rng, lines, n_nets=18)
        engine = GraphEngine(library=library, solver=solver)
        cg = engine.compile(graph)
        names = sorted(graph.nets)
        graph.resize_driver(names[4], 50.0)
        graph.set_extra_load(names[9], fF(5))
        graph.set_receiver(names[12], 75.0)
        graph.set_line(names[2], lines[1])
        edited = graph.param_edits_since(cg.version)
        patched = cg.patch(graph, library=engine.library, tech=engine.tech)
        assert patched == len(edited) >= 4  # the four plus fanin load ripples
        assert cg.version == graph.version
        fresh = engine.compile(graph)
        assert np.array_equal(cg.load, fresh.load)
        assert np.array_equal(cg.is_endpoint, fresh.is_endpoint)
        for net_id in range(cg.n_nets):
            ours, theirs = cg.config_id[net_id], fresh.config_id[net_id]
            assert (cg.config_cell[ours].driver_size
                    == fresh.config_cell[theirs].driver_size)
            assert (cg.config_line[ours].fingerprint()
                    == fresh.config_line[theirs].fingerprint())
            assert cg.config_load[ours] == fresh.config_load[theirs]

    def test_patch_is_idempotent_and_counts_zero_when_clean(
            self, library, solver, lines):
        graph = random_dag(random.Random(6), lines, n_nets=12)
        engine = GraphEngine(library=library, solver=solver)
        cg = engine.compile(graph)
        assert cg.patch(graph, library=engine.library, tech=engine.tech) == 0
        graph.set_clock_period(ps(700))  # constraint edits are not parametric
        assert cg.patch(graph, library=engine.library, tech=engine.tech) == 0
        assert cg.version == graph.version

    def test_patch_rejects_topology_drift(self, library, solver, lines):
        graph = random_dag(random.Random(7), lines, n_nets=12)
        engine = GraphEngine(library=library, solver=solver)
        cg = engine.compile(graph)
        names = sorted(graph.nets)
        for driver in names:
            sinks = [s for s in names
                     if s not in graph.nets[driver].fanout and s != driver]
            connected = False
            for sink in sinks:
                try:
                    graph.add_fanout(driver, sink)
                    connected = True
                    break
                except ModelingError:
                    continue
            if connected:
                break
        assert connected, "could not build a topology edit on this DAG"
        with pytest.raises(ModelingError):
            cg.patch(graph, library=engine.library, tech=engine.tech)


class TestSessionCache:
    def test_constraint_only_batches_never_recompile(self, solver):
        session = shared_session(solver, compile_threshold=1)
        graph = soc_graph(125)
        graph.set_clock_period(ps(1500))
        first = session.time(graph)
        assert first.meta.compile_seconds > 0.0
        graph.set_clock_period(ps(1100), hold_margin=ps(60))
        graph.set_required("k0e0", ps(600))
        graph.set_required("k0e1", ps(80), mode="hold")
        second = session.time(graph)
        assert second.meta.compile_seconds == 0.0
        assert not second.meta.patched_nets
        assert second.worst_slack != first.worst_slack  # constraints applied
        third = session.update(graph)
        assert third.meta.compile_seconds == 0.0

    def test_compiled_cache_holds_its_graph_weakly(self, solver):
        session = shared_session(solver, compile_threshold=1)
        graph = soc_graph(125)
        graph.set_clock_period(ps(1500))
        session.time(graph)
        ref = weakref.ref(graph)
        del graph
        gc.collect()
        assert ref() is None, "the compiled cache pinned a detached graph"
        assert session._compiled_cache is not None  # slot survives, graph dies


class TestCompiledIncrementalProperty:
    @pytest.mark.parametrize("mode,seed,steps", [
        ("both", 11, 12),
        ("setup", 9, 10),
        ("hold", 26, 10),
    ])
    def test_interleaved_edits_three_way_identical(self, library, solver,
                                                   lines, mode, seed, steps):
        # Identical twins: the compiled incremental engine and the object
        # oracle each consume their own graph's dirty set, so the same edit
        # sequence is replayed onto both copies from per-step seeded rngs.
        twin_compiled = random_dag(random.Random(seed), lines, n_nets=22)
        twin_object = random_dag(random.Random(seed), lines, n_nets=22)
        for twin in (twin_compiled, twin_object):
            twin.set_clock_period(ps(700), hold_margin=ps(50))
        engine = GraphEngine(library=library, solver=solver)
        incremental = CompiledIncrementalEngine(engine, twin_compiled,
                                                mode=mode)
        oracle = IncrementalEngine(twin_object, library=library, solver=solver)
        cg = refresh_snapshot(engine, twin_compiled, None)
        incremental.update(cg)
        oracle.update()
        applied = []
        for step in range(steps):
            edit_seed = seed * 1009 + step
            kind = random_edit(random.Random(edit_seed), twin_compiled, lines)
            mirror = random_edit(random.Random(edit_seed), twin_object, lines)
            assert kind == mirror  # identical graphs draw identical edits
            if kind is not None:
                applied.append(kind)
            cg = refresh_snapshot(engine, twin_compiled, cg)
            analysis = incremental.update(cg)
            full = engine.analyze_compiled(twin_compiled, compiled=cg,
                                           mode=mode)
            assert_analyses_identical(analysis, full)
            assert_matches_object_oracle(analysis, oracle.update(), mode)
        assert len(set(applied)) >= 3, "the edit mix degenerated"

    def test_noop_update_recomputes_nothing(self, library, solver, lines):
        graph = random_dag(random.Random(41), lines, n_nets=14)
        graph.set_clock_period(ps(700))
        engine = GraphEngine(library=library, solver=solver)
        incremental = CompiledIncrementalEngine(engine, graph)
        cg = engine.compile(graph)
        incremental.update(cg)
        before = solver.stats.snapshot()
        second = incremental.update(cg)
        assert solver.stats.computed == before.computed
        assert solver.stats.memo_hits == before.memo_hits
        assert second.incremental.retimed_nets == 0
        assert second.incremental.required_nets == 0

    def test_convergence_prunes_the_cone(self, library, solver, lines):
        # Re-stating a primary input with its current stimulus dirties the
        # root but changes nothing: the sweep must converge on the root level.
        graph = random_dag(random.Random(13), lines, n_nets=20)
        graph.set_clock_period(ps(700))
        engine = GraphEngine(library=library, solver=solver)
        incremental = CompiledIncrementalEngine(engine, graph)
        cg = engine.compile(graph)
        incremental.update(cg)
        name, primary = next(iter(graph.primary_inputs.items()))
        graph.set_input(name, primary)
        analysis = incremental.update(cg)
        stats = analysis.incremental
        assert stats.dirty_nets == 1
        assert stats.cone_nets == 1  # fanout never activated
        assert stats.cone_converged_early == 1
        assert stats.required_nets == 0
        full = engine.analyze_compiled(graph, compiled=cg, mode="both")
        assert_analyses_identical(analysis, full)


class TestStreamingReportReuse:
    def test_warm_compiled_update_rebuilds_only_the_cone(self, solver, lines):
        graph = random_dag(random.Random(82), lines, n_nets=20)
        graph.set_clock_period(ps(900))
        session = shared_session(solver, compile_threshold=1)
        first = session.update(graph)
        assert isinstance(first, StreamingTimingReport)
        assert first.meta.report_events_rebuilt is None  # full build
        dict(first.events)  # materialize every record into the lazy cache
        target = sorted(graph.nets)[10]
        graph.resize_driver(target, 125.0)
        second = session.update(graph)
        assert second.meta.compile_seconds == 0.0
        assert second.meta.patched_nets
        rebuilt = second.meta.report_events_rebuilt
        assert rebuilt is not None and 0 < rebuilt < second.n_events
        changed = session._compiled_incremental.last_changed_nets
        assert changed is not None
        for name in second.events:
            if name not in changed:
                assert second.events[name] is first.events[name]
        # The reused report still equals a full re-flatten, payload for payload.
        full = session.time(graph)
        warm_payload, full_payload = second.to_dict(), full.to_dict()
        warm_payload.pop("meta"), full_payload.pop("meta")
        assert warm_payload == full_payload

    def test_constraint_update_rebuilds_in_full(self, solver, lines):
        graph = random_dag(random.Random(13), lines, n_nets=16)
        graph.set_clock_period(ps(900))
        session = shared_session(solver, compile_threshold=1)
        session.update(graph)
        graph.set_clock_period(ps(800))
        second = session.update(graph)
        # Constraint edits move required times anywhere: no record carry-over.
        assert second.meta.report_events_rebuilt is None
        assert second.meta.retimed_nets == 0
        assert second.meta.compile_seconds == 0.0
        full = session.time(graph)
        warm_payload, full_payload = second.to_dict(), full.to_dict()
        warm_payload.pop("meta"), full_payload.pop("meta")
        assert warm_payload == full_payload


class TestJobsInteraction:
    def test_warm_updates_never_touch_the_pools(self, solver):
        session = shared_session(solver, compile_threshold=1, jobs=2)
        graph = soc_graph(250)
        graph.set_clock_period(ps(1500))
        with session:
            session.update(graph)
            engine = session._engine
            executor = engine._executor
            driver = engine._shard_driver
            for size in (50.0, 125.0, 75.0):
                graph.resize_driver("k0c0s2", size)
                report = session.update(graph)
                meta = report.meta
                assert meta.shards is None  # cones sweep single-shard
                assert not meta.parallel_sweep
                assert meta.compile_seconds == 0.0
            assert engine._executor is executor  # no churn per edit
            assert engine._shard_driver is driver
