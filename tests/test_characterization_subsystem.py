"""Parallel characterization engine, persistent cache, and self-healing library."""

import numpy as np
import pytest

from repro.characterization import (CellLibrary, CharacterizationCache,
                                    CharacterizationGrid, MissingCellLibraryWarning,
                                    cached_characterize_inverter,
                                    characterization_fingerprint,
                                    characterize_inverter,
                                    characterize_inverter_parallel,
                                    default_cache_directory)
from repro.characterization import cache as cache_module
from repro.characterization import parallel as parallel_module
from repro.errors import CharacterizationError
from repro.tech import InverterSpec
from repro.units import fF, ps


@pytest.fixture(scope="module")
def tiny_grid():
    """The smallest legal grid: keeps on-demand characterization cheap in tests."""
    return CharacterizationGrid(input_slews=(ps(50), ps(150)), loads=(fF(30), fF(150)))


@pytest.fixture(scope="module")
def spec40(tech):
    return InverterSpec(tech=tech, size=40)


class TestParallelEngine:
    def test_parallel_matches_serial_on_coarse_grid(self, spec40):
        """The fan-out produces bit-identical tables to the serial loop."""
        grid = CharacterizationGrid.coarse()
        serial = characterize_inverter(spec40, grid=grid, transitions=("rise",))
        parallel = characterize_inverter_parallel(spec40, grid=grid, jobs=2,
                                                  transitions=("rise",))
        for attribute in ("delay_rise", "transition_rise", "resistance_rise",
                          "delay_fall"):
            np.testing.assert_array_equal(getattr(serial, attribute).values,
                                          getattr(parallel, attribute).values)
        assert serial.cell_name == parallel.cell_name
        assert serial.metadata == parallel.metadata

    def test_jobs_one_runs_serial_path(self, spec40, tiny_grid):
        cell = characterize_inverter_parallel(spec40, grid=tiny_grid, jobs=1,
                                              transitions=("rise",))
        assert cell.driver_size == 40
        assert cell.delay_rise.shape == (2, 2)

    def test_progress_reporting(self, spec40, tiny_grid):
        seen = []
        characterize_inverter_parallel(spec40, grid=tiny_grid, jobs=2,
                                       transitions=("rise",),
                                       progress=lambda done, total: seen.append((done, total)))
        assert seen[-1] == (4, 4)
        assert [done for done, _ in seen] == sorted(done for done, _ in seen)

    def test_invalid_jobs_rejected(self, spec40, tiny_grid):
        with pytest.raises(CharacterizationError):
            characterize_inverter_parallel(spec40, grid=tiny_grid, jobs=0)

    def test_serial_fallback_when_workers_unavailable(self, spec40, tiny_grid,
                                                      monkeypatch):
        class NoFork:
            def __init__(self, *args, **kwargs):
                raise OSError("fork unavailable")

        monkeypatch.setattr(parallel_module, "ProcessPoolExecutor", NoFork)
        with pytest.warns(RuntimeWarning, match="serially"):
            cell = characterize_inverter_parallel(spec40, grid=tiny_grid, jobs=2,
                                                  transitions=("rise",))
        reference = characterize_inverter(spec40, grid=tiny_grid,
                                          transitions=("rise",))
        np.testing.assert_array_equal(cell.delay_rise.values,
                                      reference.delay_rise.values)


class TestFingerprint:
    def test_identical_runs_share_a_fingerprint(self, spec40, tiny_grid):
        assert characterization_fingerprint(spec40, tiny_grid) == \
            characterization_fingerprint(spec40, tiny_grid)

    def test_fingerprint_depends_on_all_inputs(self, tech, spec40, tiny_grid):
        base = characterization_fingerprint(spec40, tiny_grid)
        other_size = characterization_fingerprint(InverterSpec(tech=tech, size=41),
                                                  tiny_grid)
        other_grid = characterization_fingerprint(spec40, CharacterizationGrid.coarse())
        other_thresholds = characterization_fingerprint(spec40, tiny_grid, slew_low=0.2)
        other_tech = characterization_fingerprint(
            InverterSpec(tech=tech.with_supply(1.5), size=40), tiny_grid)
        assert len({base, other_size, other_grid, other_thresholds, other_tech}) == 5

    def test_default_cache_directory_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "mycache"))
        assert default_cache_directory() == tmp_path / "mycache"


class TestPersistentCache:
    def test_miss_then_hit(self, spec40, tiny_grid, tmp_path):
        cache = CharacterizationCache(tmp_path)
        first, was_cached_first = cached_characterize_inverter(
            spec40, grid=tiny_grid, cache=cache, transitions=("rise",))
        second, was_cached_second = cached_characterize_inverter(
            spec40, grid=tiny_grid, cache=cache, transitions=("rise",))
        assert (was_cached_first, was_cached_second) == (False, True)
        assert (cache.misses, cache.hits) == (1, 1)
        assert len(cache) == 1
        np.testing.assert_array_equal(first.delay_rise.values,
                                      second.delay_rise.values)

    def test_hit_never_simulates(self, spec40, tiny_grid, tmp_path, monkeypatch):
        cache = CharacterizationCache(tmp_path)
        cached_characterize_inverter(spec40, grid=tiny_grid, cache=cache,
                                     transitions=("rise",))
        monkeypatch.setattr(cache_module, "characterize_inverter_parallel",
                            lambda *a, **k: pytest.fail("cache hit must not simulate"))
        cell, was_cached = cached_characterize_inverter(
            spec40, grid=tiny_grid, cache=cache, transitions=("rise",))
        assert was_cached and cell.driver_size == 40

    def test_corrupt_entry_is_dropped_and_recharacterized(self, spec40, tiny_grid,
                                                          tmp_path):
        cache = CharacterizationCache(tmp_path)
        cached_characterize_inverter(spec40, grid=tiny_grid, cache=cache,
                                     transitions=("rise",))
        entry = next(tmp_path.glob("*.json"))
        entry.write_text("{not json")
        with pytest.warns(RuntimeWarning, match="corrupt"):
            cell, was_cached = cached_characterize_inverter(
                spec40, grid=tiny_grid, cache=cache, transitions=("rise",))
        assert not was_cached
        assert cell.delay_rise.shape == (2, 2)
        # The rebuilt entry replaced the corrupt one.
        assert len(cache) == 1

    def test_clear(self, spec40, tiny_grid, tmp_path):
        cache = CharacterizationCache(tmp_path)
        cached_characterize_inverter(spec40, grid=tiny_grid, cache=cache,
                                     transitions=("rise",))
        assert cache.clear() == 1
        assert len(cache) == 0


class TestSelfHealingLibrary:
    def test_get_or_characterize_persists_across_libraries(self, tech, tiny_grid,
                                                           tmp_path, monkeypatch):
        cache = CharacterizationCache(tmp_path)
        first = CellLibrary(tech=tech, cache=cache)
        cell = first.get_or_characterize(17, grid=tiny_grid)
        assert 17.0 in first

        # A brand-new library (fresh process, same cache dir) must reuse the entry.
        monkeypatch.setattr(cache_module, "characterize_inverter_parallel",
                            lambda *a, **k: pytest.fail("expected a cache hit"))
        second = CellLibrary(tech=tech, cache=CharacterizationCache(tmp_path))
        again = second.get_or_characterize(17, grid=tiny_grid)
        assert again.driver_size == cell.driver_size
        np.testing.assert_array_equal(again.delay_rise.values, cell.delay_rise.values)

    def test_get_or_characterize_without_cache_stays_in_memory(self, tech, tiny_grid,
                                                               tmp_path, monkeypatch):
        # A cache-less library must never fall through to the global user cache.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "global"))
        library = CellLibrary(tech=tech)
        cell = library.get_or_characterize(17, grid=tiny_grid)
        assert library.get_or_characterize(17) is cell
        assert not (tmp_path / "global").exists()

    def test_get_nearest(self, tech, tiny_grid):
        library = CellLibrary(tech=tech)
        for size in (25, 75):
            library.get_or_characterize(size, grid=tiny_grid)
        assert library.get_nearest(30).driver_size == 25
        assert library.get_nearest(74).driver_size == 75
        # Ties resolve toward the smaller driver.
        assert library.get_nearest(50).driver_size == 25
        assert library.get_nearest(75).driver_size == 75

    def test_get_nearest_on_empty_library_raises(self, tech):
        with pytest.raises(CharacterizationError, match="empty library"):
            CellLibrary(tech=tech).get_nearest(75)

    def test_shipped_default_library_self_heals(self, library, tiny_grid, tmp_path):
        """default_library() characterizes a non-shipped size instead of raising."""
        assert 60.0 not in library
        try:
            library.cache = CharacterizationCache(tmp_path)
            cell = library.get_or_characterize(60.0, grid=tiny_grid)
            assert cell.driver_size == 60.0
            assert len(library.cache) == 1
        finally:
            del library._cells[60.0]
            library.cache = CharacterizationCache()


class TestLibraryPersistence:
    def test_directory_roundtrip_preserves_tables(self, tech, tiny_grid, tmp_path):
        library = CellLibrary(tech=tech)
        for size in (12, 34):
            library.get_or_characterize(size, grid=tiny_grid)
        library.save_to_directory(tmp_path / "cells")
        reloaded = CellLibrary.from_directory(tmp_path / "cells", tech=tech)
        assert reloaded.sizes == library.sizes
        for size in (12, 34):
            np.testing.assert_array_equal(reloaded.get(size).delay_rise.values,
                                          library.get(size).delay_rise.values)
            np.testing.assert_array_equal(reloaded.get(size).resistance_fall.values,
                                          library.get(size).resistance_fall.values)

    def test_missing_directory_warns_with_regeneration_hint(self, tmp_path):
        with pytest.warns(MissingCellLibraryWarning,
                          match="generate_cell_library"):
            library = CellLibrary.from_directory(tmp_path / "nope")
        assert len(library) == 0

    def test_empty_directory_warns(self, tmp_path):
        with pytest.warns(MissingCellLibraryWarning, match="directory is empty"):
            CellLibrary.from_directory(tmp_path)

    def test_strict_missing_directory_raises(self, tmp_path):
        with pytest.raises(CharacterizationError, match="generate_cell_library"):
            CellLibrary.from_directory(tmp_path / "nope", strict=True)
