"""DC operating-point analysis."""

import pytest

from repro.circuit import Circuit, RampSource, dc_operating_point
from repro.tech import InverterSpec, add_inverter, generic_180nm


class TestLinearCircuits:
    def test_voltage_divider(self):
        circuit = Circuit()
        circuit.voltage_source("in", "0", 1.8, name="V1")
        circuit.resistor("in", "out", 1000.0)
        circuit.resistor("out", "0", 3000.0)
        op = dc_operating_point(circuit)
        assert op.voltage("out") == pytest.approx(1.35)

    def test_capacitor_is_open_at_dc(self):
        circuit = Circuit()
        circuit.voltage_source("in", "0", 1.0, name="V1")
        circuit.resistor("in", "out", 1000.0)
        circuit.capacitor("out", "0", 1e-12)
        op = dc_operating_point(circuit)
        # No DC path to ground through the capacitor: no current, no drop.
        assert op.voltage("out") == pytest.approx(1.0)

    def test_inductor_is_short_at_dc(self):
        circuit = Circuit()
        circuit.voltage_source("in", "0", 2.0, name="V1")
        circuit.resistor("in", "a", 100.0)
        circuit.inductor("a", "b", 1e-9, name="L1")
        circuit.resistor("b", "0", 100.0)
        op = dc_operating_point(circuit)
        assert op.voltage("a") == pytest.approx(op.voltage("b"))
        assert op.voltage("b") == pytest.approx(1.0)
        assert op.current("L1") == pytest.approx(0.01)

    def test_sources_evaluated_at_requested_time(self):
        circuit = Circuit()
        circuit.voltage_source("in", "0", RampSource(0.0, 2.0, 1e-9), name="V1")
        circuit.resistor("in", "0", 100.0)
        op_start = dc_operating_point(circuit, time=0.0)
        op_end = dc_operating_point(circuit, time=1e-9)
        assert op_start.voltage("in") == pytest.approx(0.0)
        assert op_end.voltage("in") == pytest.approx(2.0)

    def test_current_source_into_resistor(self):
        circuit = Circuit()
        circuit.current_source("0", "out", 1e-3, name="I1")  # pushes current into 'out'
        circuit.resistor("out", "0", 1000.0)
        op = dc_operating_point(circuit)
        assert op.voltage("out") == pytest.approx(1.0)


class TestInverterOperatingPoints:
    @pytest.fixture(scope="class")
    def inverter_circuit_factory(self):
        def build(input_level):
            tech = generic_180nm()
            circuit = Circuit()
            circuit.voltage_source("vdd", "0", tech.vdd, name="Vdd")
            circuit.voltage_source("a", "0", input_level, name="Vin")
            add_inverter(circuit, InverterSpec(tech=tech, size=10), "a", "y")
            return circuit, tech
        return build

    def test_output_high_when_input_low(self, inverter_circuit_factory):
        circuit, tech = inverter_circuit_factory(0.0)
        op = dc_operating_point(circuit)
        assert op.voltage("y") == pytest.approx(tech.vdd, abs=0.02)

    def test_output_low_when_input_high(self, inverter_circuit_factory):
        circuit, tech = inverter_circuit_factory(1.8)
        op = dc_operating_point(circuit)
        assert op.voltage("y") == pytest.approx(0.0, abs=0.02)

    def test_switching_region_is_between_rails(self, inverter_circuit_factory):
        circuit, tech = inverter_circuit_factory(0.9)
        op = dc_operating_point(circuit)
        assert 0.1 < op.voltage("y") < tech.vdd - 0.1

    def test_dc_transfer_is_monotonically_decreasing(self, inverter_circuit_factory):
        previous = None
        for vin in (0.0, 0.45, 0.9, 1.35, 1.8):
            circuit, _ = inverter_circuit_factory(vin)
            vout = dc_operating_point(circuit).voltage("y")
            if previous is not None:
                assert vout <= previous + 1e-6
            previous = vout
