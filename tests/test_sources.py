"""Time-dependent source descriptions."""

import pytest

from repro.circuit import DCSource, PWLSource, PulseSource, RampSource, as_source
from repro.errors import CircuitError
from repro.units import ps


class TestDCSource:
    def test_constant_value(self):
        source = DCSource(1.8)
        assert source.value(0.0) == 1.8
        assert source.value(1e-9) == 1.8
        assert source.dc_value() == 1.8

    def test_callable(self):
        assert DCSource(0.9)(5e-12) == 0.9


class TestRampSource:
    def test_rising_ramp_profile(self):
        source = RampSource(0.0, 1.8, ps(100), t_delay=ps(20))
        assert source.value(0.0) == 0.0
        assert source.value(ps(20)) == 0.0
        assert source.value(ps(70)) == pytest.approx(0.9)
        assert source.value(ps(120)) == pytest.approx(1.8)
        assert source.value(ps(500)) == pytest.approx(1.8)

    def test_falling_ramp_profile(self):
        source = RampSource(1.8, 0.0, ps(50))
        assert source.value(0.0) == pytest.approx(1.8)
        assert source.value(ps(25)) == pytest.approx(0.9)
        assert source.value(ps(50)) == pytest.approx(0.0)

    def test_zero_transition_time_rejected(self):
        with pytest.raises(CircuitError):
            RampSource(0.0, 1.8, 0.0)

    def test_dc_value_is_initial_level(self):
        source = RampSource(1.8, 0.0, ps(100), t_delay=ps(10))
        assert source.dc_value() == pytest.approx(1.8)


class TestPWLSource:
    def test_interpolates_between_points(self):
        source = PWLSource([(0.0, 0.0), (ps(100), 1.0), (ps(200), 0.5)])
        assert source.value(ps(50)) == pytest.approx(0.5)
        assert source.value(ps(150)) == pytest.approx(0.75)

    def test_holds_end_values(self):
        source = PWLSource([(ps(10), 0.2), (ps(20), 0.8)])
        assert source.value(0.0) == pytest.approx(0.2)
        assert source.value(ps(100)) == pytest.approx(0.8)

    def test_requires_two_points(self):
        with pytest.raises(CircuitError):
            PWLSource([(0.0, 1.0)])

    def test_rejects_decreasing_times(self):
        with pytest.raises(CircuitError):
            PWLSource([(ps(10), 0.0), (ps(5), 1.0)])

    def test_points_roundtrip(self):
        points = [(0.0, 0.0), (ps(50), 1.8)]
        assert PWLSource(points).points == tuple(points)


class TestPulseSource:
    def test_pulse_profile(self):
        source = PulseSource(v_initial=0.0, v_pulse=1.8, t_delay=ps(10), t_rise=ps(10),
                             t_fall=ps(10), t_width=ps(30), t_period=ps(100))
        assert source.value(0.0) == 0.0
        assert source.value(ps(15)) == pytest.approx(0.9)
        assert source.value(ps(30)) == pytest.approx(1.8)
        assert source.value(ps(55)) == pytest.approx(0.9)
        assert source.value(ps(80)) == pytest.approx(0.0)

    def test_pulse_is_periodic(self):
        source = PulseSource(0.0, 1.0, 0.0, ps(5), ps(5), ps(20), ps(50))
        assert source.value(ps(10)) == pytest.approx(source.value(ps(60)))

    def test_shape_must_fit_period(self):
        with pytest.raises(CircuitError):
            PulseSource(0.0, 1.0, 0.0, ps(30), ps(30), ps(50), ps(80))


class TestAsSource:
    def test_numbers_become_dc_sources(self):
        source = as_source(1.2)
        assert isinstance(source, DCSource)
        assert source.value(0.0) == pytest.approx(1.2)

    def test_sources_pass_through(self):
        ramp = RampSource(0.0, 1.0, ps(10))
        assert as_source(ramp) is ramp

    def test_invalid_type_rejected(self):
        with pytest.raises(CircuitError):
            as_source("1.8V")
