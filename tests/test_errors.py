"""Exception hierarchy contracts."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in ("CircuitError", "SimulationError", "ConvergenceError",
                 "CharacterizationError", "ModelingError", "WaveformError"):
        exc_type = getattr(errors, name)
        assert issubclass(exc_type, errors.ReproError)


def test_convergence_error_is_a_simulation_error():
    assert issubclass(errors.ConvergenceError, errors.SimulationError)


def test_convergence_error_carries_metadata():
    exc = errors.ConvergenceError("did not converge", iterations=42, last_value=1.5e-13)
    assert exc.iterations == 42
    assert exc.last_value == pytest.approx(1.5e-13)
    assert "did not converge" in str(exc)


def test_catching_base_class_catches_subclasses():
    with pytest.raises(errors.ReproError):
        raise errors.ModelingError("bad input")
