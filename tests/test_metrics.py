"""Accuracy metrics used by the experiment harness."""

import numpy as np
import pytest

from repro.analysis import AccuracySummary, percent_error, signed_percent_errors, summarize_errors


class TestPercentError:
    def test_positive_error(self):
        assert percent_error(110.0, 100.0) == pytest.approx(10.0)

    def test_negative_error(self):
        assert percent_error(90.0, 100.0) == pytest.approx(-10.0)

    def test_zero_reference_raises(self):
        with pytest.raises(ZeroDivisionError):
            percent_error(1.0, 0.0)

    def test_matches_paper_table1_convention(self):
        # Paper row: HSPICE delay 25.01 ps, two-ramp 24.2 ps -> -3.2%.
        assert percent_error(24.2, 25.01) == pytest.approx(-3.2, abs=0.05)


class TestVectorizedErrors:
    def test_signed_percent_errors(self):
        errors = signed_percent_errors([11.0, 9.0], [10.0, 10.0])
        assert errors == pytest.approx([10.0, -10.0])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            signed_percent_errors([1.0, 2.0], [1.0])

    def test_zero_reference_raises(self):
        with pytest.raises(ZeroDivisionError):
            signed_percent_errors([1.0], [0.0])


class TestAccuracySummary:
    def test_summary_statistics(self):
        summary = AccuracySummary.from_errors([1.0, -2.0, 4.0, -8.0])
        assert summary.count == 4
        assert summary.mean_abs_error == pytest.approx(3.75)
        assert summary.max_abs_error == pytest.approx(8.0)
        assert summary.median_abs_error == pytest.approx(3.0)
        assert summary.fraction_under_5pct == pytest.approx(0.75)
        assert summary.fraction_under_10pct == pytest.approx(1.0)

    def test_empty_population_raises(self):
        with pytest.raises(ValueError):
            AccuracySummary.from_errors([])

    def test_describe_mentions_key_statistics(self):
        summary = AccuracySummary.from_errors([3.0, 6.0])
        text = summary.describe("delay")
        assert "delay" in text
        assert "n=2" in text

    def test_summarize_errors_convenience(self):
        summary = summarize_errors([105.0, 95.0], [100.0, 100.0])
        assert summary.mean_abs_error == pytest.approx(5.0)

    def test_paper_figure7_style_fractions(self):
        # Construct a population with exactly 48% of |e| < 5 and 83% < 10 like Fig. 7.
        rng = np.random.default_rng(7)
        errors = np.concatenate([
            rng.uniform(0, 4.9, 48),
            rng.uniform(5.1, 9.9, 35),
            rng.uniform(10.1, 20.0, 17),
        ])
        summary = AccuracySummary.from_errors(errors)
        assert summary.fraction_under_5pct == pytest.approx(0.48)
        assert summary.fraction_under_10pct == pytest.approx(0.83)
