"""The serve daemon: codec validation, registry discipline, HTTP, concurrency.

The expensive pieces (a running server with attached designs) are
module-scoped; tests read through fresh :class:`ServeClient` instances (one
connection each, so tests never share HTTP state).
"""

from __future__ import annotations

import threading

import pytest

from repro.api import TimingSession
from repro.errors import ReproError
from repro.experiments.graph_cases import BUILTIN_CASES, benchmark_graph, case_graph
from repro.serve import (
    AttachRequest,
    DesignRegistry,
    EditRequest,
    ServeClient,
    ServeError,
    TimingServer,
    UnknownDesignError,
    ValidationError,
)
from repro.serve.codec import DesignSpec, LineSpec
from repro.units import ps, to_ps

#: A tiny two-net design spec exercising every spec section.
SPEC = {
    "nets": [
        {"name": "a", "driver_size": 75.0, "fanout": ["b"],
         "line": {"resistance": 120.0, "inductance": 1e-9, "capacitance": 2e-13}},
        {"name": "b", "driver_size": 50.0, "receiver_size": 75.0,
         "line": {"resistance": 200.0, "inductance": 2e-9, "capacitance": 3e-13}},
    ],
    "inputs": [{"net": "a", "slew_ps": 100.0}],
    "requires": [{"net": "b", "required_ps": 800.0}],
}


# --- codec ----------------------------------------------------------------------------
class TestCodec:
    def test_attach_needs_exactly_one_source(self):
        with pytest.raises(ValidationError, match="exactly one"):
            AttachRequest.from_payload({"name": "d"})
        with pytest.raises(ValidationError, match="exactly one"):
            AttachRequest.from_payload({"name": "d", "case": "chain3", "spec": SPEC})

    def test_attach_rejects_unknown_case_and_fields(self):
        with pytest.raises(ValidationError, match="unknown case"):
            AttachRequest.from_payload({"name": "d", "case": "nope"})
        with pytest.raises(ValidationError, match="unknown attach request field"):
            AttachRequest.from_payload({"name": "d", "case": "chain3", "bogus": 1})

    def test_attach_validates_numbers(self):
        for bad in ({"clock_ps": -1.0}, {"input_slew_ps": 0.0}, {"nets": 0},
                    {"depth": "deep"}, {"hold_margin_ps": 5.0}):
            with pytest.raises(ValidationError):
                AttachRequest.from_payload({"name": "d", "case": "chain3", **bad})

    def test_every_builtin_case_builds(self):
        for case in BUILTIN_CASES:
            request = AttachRequest.from_payload(
                {"name": case, "case": case, "nets": 4, "depth": 2})
            graph = request.build_graph()
            assert len(graph) >= 1
            assert not graph.dirty_nets

    def test_spec_builds_the_described_graph(self):
        request = AttachRequest.from_payload({"name": "d", "spec": SPEC})
        graph = request.build_graph()
        assert sorted(graph.nets) == ["a", "b"]
        assert graph.nets["a"].fanout == ("b",)
        assert graph.nets["b"].receiver_size == 75.0
        assert graph.required_pins("setup")["b"] == {
            "rise": ps(800.0), "fall": ps(800.0)}

    def test_spec_structural_errors_are_engine_errors(self):
        # Well-formed JSON, bad topology: surfaces at build() as ReproError
        # (422), not ValidationError (400).
        spec = {"nets": [dict(SPEC["nets"][0], fanout=["zz"])],
                "inputs": SPEC["inputs"]}
        request = AttachRequest.from_payload({"name": "d", "spec": spec})
        with pytest.raises(ReproError):
            request.build_graph()
        with pytest.raises(ValidationError):  # malformed spec stays a 400
            DesignSpec.from_payload({"nets": [], "inputs": []})

    def test_line_spec_validation(self):
        with pytest.raises(ValidationError, match="positive"):
            LineSpec.from_payload(
                {"resistance": -1.0, "inductance": 1e-9, "capacitance": 1e-13})
        with pytest.raises(ValidationError, match="unknown"):
            LineSpec.from_payload(
                {"resistance": 1.0, "inductance": 1e-9, "capacitance": 1e-13,
                 "impedance": 50.0})

    def test_edit_request_parses_every_verb(self):
        request = EditRequest.from_payload({"edits": [
            {"op": "resize_driver", "net": "a", "driver_size": 50.0},
            {"op": "set_line", "net": "a",
             "line": {"resistance": 1.0, "inductance": 1e-9, "capacitance": 1e-13}},
            {"op": "set_extra_load", "net": "a", "extra_load": 1e-14},
            {"op": "set_receiver", "net": "b", "receiver_size": None},
            {"op": "add_fanout", "driver": "a", "sink": "b"},
            {"op": "remove_fanout", "driver": "a", "sink": "b"},
            {"op": "set_required", "net": "b", "required_ps": 900.0, "mode": "hold"},
            {"op": "set_clock", "period_ps": 1000.0, "hold_margin_ps": 30.0},
        ]})
        assert len(request.edits) == 8
        assert request.edits[6].required == pytest.approx(ps(900.0))

    def test_edit_request_rejects_bad_payloads(self):
        for bad, match in (
            ({"edits": []}, "non-empty"),
            ({"edits": [{"op": "warp", "net": "a"}]}, "edits\\[0\\]"),
            ({"edits": [{"op": "resize_driver", "net": "a", "driver_size": -1}]},
             "positive"),
            ({"edits": [{"op": "resize_driver", "net": "a", "driver_size": 1,
                         "bogus": 2}]}, "unknown"),
            ({"edits": [{"op": "set_required", "net": "a", "required_ps": 1,
                         "mode": "sideways"}]}, "sideways"),
        ):
            with pytest.raises(ValidationError, match=match):
                EditRequest.from_payload(bad)


# --- registry -------------------------------------------------------------------------
class TestRegistry:
    @pytest.fixture(scope="class")
    def registry(self, library):
        registry = DesignRegistry()
        registry.attach(AttachRequest(name="d1", case="chain3", clock_ps=900.0))
        yield registry
        registry.close()

    def test_attach_duplicate_and_unknown(self, registry):
        with pytest.raises(ReproError, match="already attached"):
            registry.attach(AttachRequest(name="d1", case="chain3"))
        with pytest.raises(UnknownDesignError):
            registry.get("nope")
        with pytest.raises(UnknownDesignError):
            registry.detach("nope")
        assert registry.names() == ["d1"]

    def test_edit_batch_bumps_seq_and_diffs(self, registry):
        design = registry.get("d1")
        seq = design.snapshot.seq
        snapshot = design.apply_edits(EditRequest.from_payload({"edits": [
            {"op": "resize_driver", "net": "stage1", "driver_size": 100.0}]}))
        assert snapshot.seq == seq + 1
        assert design.snapshot is snapshot
        assert snapshot.diff is not None
        assert snapshot.report.meta.incremental
        assert snapshot.report.meta.retimed_nets < len(design.graph) + 1

    def test_rejected_batch_rolls_back(self, registry):
        design = registry.get("d1")
        before = design.snapshot
        sizes = {name: net.driver_size for name, net in design.graph.nets.items()}
        with pytest.raises(ReproError):
            design.apply_edits(EditRequest.from_payload({"edits": [
                {"op": "resize_driver", "net": "stage2", "driver_size": 25.0},
                {"op": "add_fanout", "driver": "stage3", "sink": "stage1"},
            ]}))
        # All-or-nothing: the first verb was rolled back, the snapshot kept.
        assert design.snapshot is before
        assert {n: net.driver_size for n, net in design.graph.nets.items()} == sizes
        assert design.stats_payload()["rejected_batches"] >= 1


# --- HTTP endpoints -------------------------------------------------------------------
@pytest.fixture(scope="module")
def server(library):
    with TimingServer(port=0) as server:
        yield server


@pytest.fixture()
def client(server):
    with ServeClient(port=server.port) as client:
        yield client


@pytest.fixture(scope="module")
def attached(server):
    """The shared 'web' design (chain3 + clock), attached once."""
    with ServeClient(port=server.port) as client:
        client.attach("web", case="chain3", clock_ps=900.0)
    return "web"


class TestHTTP:
    def test_healthz_and_stats(self, client, attached):
        health = client.healthz()
        assert health["status"] == "ok" and health["designs"] >= 1
        stats = client.stats()
        assert attached in stats["designs"]
        assert stats["designs"][attached]["analyses"] >= 1
        assert any(d["name"] == attached for d in client.designs())

    def test_summary_and_slack(self, client, attached):
        summary = client.wns(attached)
        assert summary["nets"] == 3
        assert summary["wns_ps"] == pytest.approx(to_ps(summary["wns"]))
        slack = client.slack(attached, limit=5)
        assert slack["mode"] == "setup"
        assert slack["endpoints"]
        assert slack["worst"] is not None

    def test_report_and_events(self, client, attached):
        report = client.report(attached)
        assert set(report["events"]) == {"stage1", "stage2", "stage3"}
        events = client.events(attached, "stage2")
        assert set(events["events"]) <= {"rise", "fall"}

    def test_error_mapping(self, client, attached):
        with pytest.raises(ServeError) as excinfo:
            client.wns("ghost")
        assert excinfo.value.status == 404
        with pytest.raises(ServeError) as excinfo:
            client.events(attached, "ghost_net")
        assert excinfo.value.status == 404
        with pytest.raises(ServeError) as excinfo:
            client.attach("bad")  # neither case nor spec
        assert excinfo.value.status == 400
        with pytest.raises(ServeError) as excinfo:
            client.slack(attached, mode="sideways")
        assert excinfo.value.status == 400
        with pytest.raises(ServeError) as excinfo:
            client.edit(attached, [
                {"op": "add_fanout", "driver": "stage3", "sink": "stage1"}])
        assert excinfo.value.status == 422
        with pytest.raises(ServeError) as excinfo:
            client.request("GET", "/teapot")
        assert excinfo.value.status == 404
        with pytest.raises(ServeError) as excinfo:
            client.request("POST", "/designs/%s/edits" % attached, {"edits": "no"})
        assert excinfo.value.status == 400

    def test_edit_round_trip_and_diff(self, client, attached):
        before = client.wns(attached)
        response = client.resize(attached, "stage1", 75.0)
        assert response["seq"] == before["seq"] + 1
        diff = response["diff"]
        assert diff["old_seq"] == before["seq"]
        assert diff["new_seq"] == response["seq"]
        assert client.diff(attached)["diff"]["new_wns"] == diff["new_wns"]
        stats = client.design_stats(attached)
        assert stats["edit_batches"] >= 1
        assert stats["last_run"]["retimed_nets"] <= 3
        # The PR-9 sharded-sweep counters ride along in every run payload
        # (None/False here: serve designs re-time on the object engine).
        for counter in ("shards", "boundary_events_exchanged",
                        "parallel_sweep"):
            assert counter in stats["last_run"]

    def test_attach_spec_detach(self, client):
        summary = client.attach("custom", spec=SPEC)
        assert summary["nets"] == 2
        assert client.wns("custom")["worst_slack"] is not None
        assert client.detach("custom") == {"detached": "custom"}
        with pytest.raises(ServeError) as excinfo:
            client.wns("custom")
        assert excinfo.value.status == 404

    def test_warm_queries_never_reanalyze(self, client, attached):
        analyses = client.design_stats(attached)["analyses"]
        for _ in range(5):
            client.wns(attached)
            client.slack(attached)
        after = client.design_stats(attached)
        assert after["analyses"] == analyses
        assert after["queries"] >= 10


class TestUnixSocket:
    def test_serves_over_af_unix(self, tmp_path, library):
        path = str(tmp_path / "repro.sock")
        with TimingServer(socket_path=path) as server:
            assert server.describe() == f"unix:{path}"
            with ServeClient(socket_path=path) as client:
                assert client.wait_until_up()["status"] == "ok"
                with pytest.raises(ServeError) as excinfo:
                    client.wns("ghost")
                assert excinfo.value.status == 404


# --- the concurrency satellite --------------------------------------------------------
class TestConcurrentAccess:
    NETS = 64
    CLOCK_PS = 2500.0
    BATCHES = 6

    def test_readers_see_only_published_snapshots(self, library):
        """Readers hammering /wns during edits observe no torn state, and the
        final published report is bit-identical to a from-scratch analysis."""
        with TimingServer(port=0) as server:
            with ServeClient(port=server.port) as writer:
                attach = writer.attach("soc", case="bench", nets=self.NETS,
                                       clock_ps=self.CLOCK_PS)
                # seq -> the summary the writer saw when publishing it
                published = {attach["seq"]: attach}
                stop = threading.Event()
                observed = []
                failures = []

                def read_loop():
                    try:
                        with ServeClient(port=server.port) as reader:
                            while not stop.is_set():
                                observed.append(reader.wns("soc"))
                    except Exception as exc:  # pragma: no cover - diagnostic
                        failures.append(exc)

                readers = [threading.Thread(target=read_loop) for _ in range(4)]
                for thread in readers:
                    thread.start()
                try:
                    for index in range(self.BATCHES):
                        size = 50.0 if index % 2 == 0 else 75.0
                        response = writer.resize("soc", "c0s15", size)
                        response.pop("diff")
                        published[response["seq"]] = response
                finally:
                    stop.set()
                    for thread in readers:
                        thread.join(timeout=30)
                assert not failures
                assert len(published) == self.BATCHES + 1

                # Snapshot isolation: every observation is exactly one of the
                # published summaries — never a mix of two analyses.
                assert observed
                for summary in observed:
                    assert summary == published[summary["seq"]]

                final = writer.report("soc")
        # Bit-identical to a from-scratch analysis of the same edited design.
        graph = case_graph("bench", nets=self.NETS)
        graph.set_clock_period(ps(self.CLOCK_PS))
        final_size = 50.0 if (self.BATCHES - 1) % 2 == 0 else 75.0
        graph.resize_driver("c0s15", final_size)
        with TimingSession() as session:
            scratch = session.time(graph, name="soc").to_dict()
        for key in ("events", "levels", "critical_path"):
            assert final[key] == scratch[key]
