"""Shared fixtures for the test suite.

Reference (transistor-level) simulations and cell characterizations are expensive,
so anything reusable is session-scoped: the shipped cell library, a caching
reference simulator, and the reference waveform of the paper's Figure 1 case.
"""

from __future__ import annotations

import pytest

from repro.characterization import default_library
from repro.experiments.paper_cases import FIGURE1_CASE, FIGURE6_SINGLE_RAMP_CASE
from repro.experiments.reference import ReferenceSimulator
from repro.interconnect import RLCLine
from repro.tech import InverterSpec, generic_180nm
from repro.units import mm, nH, pF


@pytest.fixture(scope="session")
def tech():
    """The default 0.18 um technology."""
    return generic_180nm()


@pytest.fixture(scope="session")
def library():
    """The shipped pre-characterized cell library."""
    lib = default_library()
    assert {25.0, 50.0, 75.0, 100.0, 125.0} <= set(lib.sizes), \
        "shipped cell library is missing or incomplete; run scripts/generate_cell_library.py"
    return lib


@pytest.fixture(scope="session")
def cell75(library):
    """The characterized 75X inverter."""
    return library.get(75)


@pytest.fixture(scope="session")
def cell100(library):
    """The characterized 100X inverter."""
    return library.get(100)


@pytest.fixture(scope="session")
def cell25(library):
    """The characterized 25X inverter."""
    return library.get(25)


@pytest.fixture(scope="session")
def spec75(tech):
    """An InverterSpec for the 75X driver."""
    return InverterSpec(tech=tech, size=75)


@pytest.fixture(scope="session")
def line_5mm():
    """The paper's Figure 1 line: 5 mm, 1.6 um (printed parasitics)."""
    return RLCLine(resistance=72.44, inductance=nH(5.14), capacitance=pF(1.10),
                   length=mm(5))


@pytest.fixture(scope="session")
def line_3mm():
    """The paper's Table 1 line: 3 mm, 1.2 um (printed parasitics)."""
    return RLCLine(resistance=56.3, inductance=nH(3.2), capacitance=pF(0.59),
                   length=mm(3))


@pytest.fixture(scope="session")
def reference_simulator():
    """A caching transistor-level reference simulator shared by the whole session."""
    return ReferenceSimulator()


@pytest.fixture(scope="session")
def fig1_reference(reference_simulator):
    """Reference simulation of the Figure 1 case (5 mm / 1.6 um / 75X / 100 ps)."""
    return reference_simulator.simulate_case(FIGURE1_CASE)


@pytest.fixture(scope="session")
def fig6_weak_reference(reference_simulator):
    """Reference simulation of the weak-driver Figure 6 case (4 mm / 1.6 um / 25X)."""
    return reference_simulator.simulate_case(FIGURE6_SINGLE_RAMP_CASE)
