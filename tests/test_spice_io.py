"""SPICE netlist export."""

import pytest

from repro.circuit import (Circuit, DCSource, PulseSource, PWLSource, RampSource)
from repro.circuit.spice_io import netlist_to_spice, source_to_spice
from repro.errors import CircuitError
from repro.interconnect import RLCLine, add_line_ladder
from repro.tech import InverterSpec, add_inverter, generic_180nm
from repro.units import mm, nH, pF, ps


class TestSourceFormatting:
    def test_dc_source(self):
        assert source_to_spice(DCSource(1.8)) == "DC 1.8"

    def test_ramp_becomes_pwl(self):
        text = source_to_spice(RampSource(1.8, 0.0, ps(100), t_delay=ps(20)))
        assert text.startswith("PWL(")
        assert "2e-11" in text and "1.2e-10" in text

    def test_pwl_source(self):
        text = source_to_spice(PWLSource([(0.0, 0.0), (ps(50), 1.8)]))
        assert text == "PWL(0 0 5e-11 1.8)"

    def test_pulse_source(self):
        text = source_to_spice(PulseSource(0.0, 1.8, ps(10), ps(5), ps(5), ps(30),
                                           ps(100)))
        assert text.startswith("PULSE(")
        assert text.count(" ") == 6

    def test_unknown_source_rejected(self):
        class Odd:
            pass

        with pytest.raises(CircuitError):
            source_to_spice(Odd())


class TestNetlistExport:
    def test_rlc_deck_contains_every_element(self):
        circuit = Circuit("deck")
        circuit.voltage_source("in", "0", RampSource(0.0, 1.8, ps(50)), name="drv")
        line = RLCLine(resistance=72.44, inductance=nH(5.14), capacitance=pF(1.10),
                       length=mm(5))
        add_line_ladder(circuit, line, "in", "far", n_segments=4)
        deck = netlist_to_spice(circuit)
        assert deck.splitlines()[0].startswith("*")
        assert deck.rstrip().endswith(".end")
        # 4 resistors, 4 inductors, 5 capacitors, 1 source.
        lines = deck.splitlines()
        assert sum(1 for l in lines if l.startswith("R")) == 4
        assert sum(1 for l in lines if l.startswith("L")) == 4
        assert sum(1 for l in lines if l.startswith("C")) == 5
        assert sum(1 for l in lines if l.startswith("Vdrv")) == 1

    def test_inverter_deck_has_mosfets_and_models(self):
        tech = generic_180nm()
        circuit = Circuit("inv_deck")
        circuit.voltage_source("vdd", "0", tech.vdd, name="Vdd")
        circuit.voltage_source("a", "0", RampSource(tech.vdd, 0.0, ps(100)), name="Vin")
        add_inverter(circuit, InverterSpec(tech=tech, size=75), "a", "y")
        deck = netlist_to_spice(circuit, title="75X inverter")
        assert "* 75X inverter" in deck
        assert sum(1 for l in deck.splitlines() if l.startswith("M")) == 2
        assert ".model nmos_0 NMOS" in deck
        assert ".model pmos_1 PMOS" in deck or ".model pmos_0 PMOS" in deck
        # Device width is carried through.
        assert "W=2.7e-05" in deck

    def test_ground_node_preserved(self):
        circuit = Circuit()
        circuit.voltage_source("a", "0", 1.0, name="V1")
        circuit.resistor("a", "0", 100.0)
        deck = netlist_to_spice(circuit)
        assert "a 0 100" in deck

    def test_invalid_circuit_rejected(self):
        circuit = Circuit()
        circuit.resistor("a", "b", 100.0)  # never references ground
        with pytest.raises(CircuitError):
            netlist_to_spice(circuit)
