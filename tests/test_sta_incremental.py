"""IncrementalEngine: dirty-cone re-timing is bit-identical to full analysis.

The acceptance property of the incremental kernel: after *any* sequence of graph
edits, ``IncrementalEngine.update()`` must produce exactly the events a
from-scratch ``GraphEngine.analyze()`` of the same graph state produces — same
(net, transition) keys, same arrivals, slews, required times and traceback
sources, bit for bit.  The property test drives random edit sequences (resizes,
re-routes, load/receiver changes, stimulus changes, constraint changes and
structural connect/disconnect edits) over the PR-2 workload shapes and checks
equivalence after every step.

Both engines share one memoized solver — sharing cannot affect results (memo
hits are guaranteed bit-identical to recomputes) and keeps the test fast.
"""

import random

import pytest

from repro.core import StageSolver
from repro.errors import ModelingError
from repro.experiments import parallel_chains, reconvergent_graph
from repro.interconnect import RLCLine
from repro.sta import GraphEngine, IncrementalEngine, PrimaryInput
from repro.units import fF, mm, nH, pF, ps

LIBRARY_SIZES = (25.0, 50.0, 75.0, 100.0, 125.0)


@pytest.fixture(scope="module")
def lines():
    """Two cheap-to-solve line flavors (short wires keep the test quick)."""
    return [RLCLine(resistance=20.0, inductance=nH(1.05), capacitance=pF(0.22),
                    length=mm(1)),
            RLCLine(resistance=38.0, inductance=nH(2.1), capacitance=pF(0.42),
                    length=mm(2))]


@pytest.fixture(scope="module")
def solver():
    """One memo shared by the incremental engine and every full baseline."""
    return StageSolver()


def assert_reports_identical(incremental, full):
    """Every event equal, bit for bit (both planes, both modes' bookkeeping)."""
    assert set(incremental.events) == set(full.events)
    for name, per_net in full.events.items():
        ours = incremental.events[name]
        assert set(ours) == set(per_net)
        for transition, event in per_net.items():
            other = ours[transition]
            assert other.input_arrival == event.input_arrival
            assert other.input_slew == event.input_slew
            assert other.output_arrival == event.output_arrival
            assert other.required == event.required
            assert other.source == event.source
            assert other.early_input_arrival == event.early_input_arrival
            assert other.early_output_arrival == event.early_output_arrival
            assert other.early_source == event.early_source
            assert other.hold_required == event.hold_required
            assert other.hold_slack == event.hold_slack
            assert other.solution.fingerprint == event.solution.fingerprint
            assert other.solution.far_slew == event.solution.far_slew


#: Edit kinds that only touch constraints: no structural dirt, no new solves.
CONSTRAINT_KINDS = ("clock", "require", "hold_require")

#: Edit kinds that dirty nets (stage configurations or connectivity change).
STRUCTURAL_KINDS = ("resize", "line", "load", "input", "connect", "disconnect")


def random_edit(rng, graph, lines, kinds=STRUCTURAL_KINDS + CONSTRAINT_KINDS):
    """Apply one random edit; returns its short description (for repro logs)."""
    names = list(graph.nets)
    kind = rng.choice(list(kinds))
    try:
        if kind == "resize":
            name = rng.choice(names)
            graph.resize_driver(name, rng.choice(LIBRARY_SIZES))
        elif kind == "line":
            name = rng.choice(names)
            graph.set_line(name, rng.choice(lines))
        elif kind == "load":
            name = rng.choice(names)
            graph.set_extra_load(name, rng.choice([0.0, fF(2), fF(5), fF(11)]))
        elif kind == "input":
            name = rng.choice(list(graph.primary_inputs))
            graph.set_input(name, PrimaryInput(
                slew=rng.choice([ps(60), ps(100), ps(140)]),
                transition=rng.choice(["rise", "fall"])))
        elif kind == "clock":
            graph.set_clock_period(
                rng.choice([None, ps(300), ps(600)]),
                hold_margin=rng.choice([None, 0.0, ps(40), ps(120)]))
        elif kind == "require":
            name = rng.choice(graph.endpoints)
            graph.set_required(
                name, rng.choice([None, ps(150), ps(450)]),
                transition=rng.choice([None, "rise", "fall"]))
        elif kind == "hold_require":
            name = rng.choice(graph.endpoints)
            graph.set_required(
                name, rng.choice([None, ps(30), ps(200)]),
                transition=rng.choice([None, "rise", "fall"]), mode="hold")
        elif kind == "connect":
            graph.add_fanout(rng.choice(names), rng.choice(names))
        elif kind == "disconnect":
            driver = rng.choice(names)
            fanout = graph.nets[driver].fanout
            if not fanout:
                return None
            graph.remove_fanout(driver, rng.choice(fanout))
    except ModelingError:
        return None  # the edit was structurally invalid; the graph is untouched
    return kind


class TestIncrementalProperty:
    @pytest.mark.parametrize("shape,seed,steps", [
        ("diamond", 2003, 10),
        ("chains", 404, 10),
    ])
    def test_random_edit_sequences_stay_bit_identical(self, library, solver,
                                                      lines, shape, seed,
                                                      steps):
        if shape == "diamond":
            graph = reconvergent_graph(line=lines[0])
        else:
            graph = parallel_chains(2, 3, lines=[lines[0]],
                                    input_slew=ps(100))
        rng = random.Random(seed)
        incremental = IncrementalEngine(graph, library=library, solver=solver)
        baseline = GraphEngine(library=library, solver=solver)
        incremental.update()
        applied = []
        for _ in range(steps):
            kind = random_edit(rng, graph, lines)
            if kind is None:
                continue
            applied.append(kind)
            assert_reports_identical(incremental.update(),
                                     baseline.analyze(graph))
        assert applied, "the edit sequence degenerated to no-ops"

    def test_noop_update_recomputes_nothing(self, library, solver, lines):
        graph = reconvergent_graph(line=lines[0])
        engine = IncrementalEngine(graph, library=library, solver=solver)
        first = engine.update()
        before = solver.stats.snapshot()
        second = engine.update()
        after = solver.stats
        assert after.computed == before.computed
        assert after.memo_hits == before.memo_hits  # not even memo traffic
        assert second.incremental.retimed_nets == 0
        assert_reports_identical(second, first)

    def test_constraint_edit_is_arithmetic_only(self, library, solver, lines):
        graph = reconvergent_graph(line=lines[0])
        engine = IncrementalEngine(graph, library=library, solver=solver)
        engine.update()
        before = solver.stats.snapshot()
        graph.set_clock_period(ps(500))
        report = engine.update()
        assert solver.stats.computed == before.computed
        assert solver.stats.memo_hits == before.memo_hits
        assert report.incremental.retimed_nets == 0
        assert report.incremental.required_nets == len(graph)
        assert report.incremental.hold_required_nets == 0
        assert_reports_identical(report,
                                 GraphEngine(library=library,
                                             solver=solver).analyze(graph))
        # Turning on the hold plane is just as free: zero solver traffic.
        graph.set_clock_period(ps(500), hold_margin=ps(80))
        before = solver.stats.snapshot()
        report = engine.update()
        assert solver.stats.computed == before.computed
        assert solver.stats.memo_hits == before.memo_hits
        assert report.incremental.retimed_nets == 0
        assert report.incremental.hold_required_nets == len(graph)
        assert_reports_identical(report,
                                 GraphEngine(library=library,
                                             solver=solver).analyze(graph))

    def test_constraint_only_updates_interleaved_with_structural(
            self, library, solver, lines):
        """Constraint batches between structural edits stay bit-identical.

        Constraint edits (``set_required`` of either mode,
        ``set_clock_period`` with/without a hold margin) leave the structural
        dirty set empty, so their updates must cost zero solver traffic —
        while the interleaving with structural edits keeps exercising the
        cached-event re-seeding those updates depend on.
        """
        graph = parallel_chains(2, 3, lines=[lines[0]], input_slew=ps(100))
        rng = random.Random(7)
        incremental = IncrementalEngine(graph, library=library, solver=solver)
        baseline = GraphEngine(library=library, solver=solver)
        incremental.update()
        constraint_updates = structural_updates = 0
        for step in range(12):
            if step % 2 == 0:
                applied = None
                for _ in range(rng.choice([1, 2, 3])):
                    applied = (random_edit(rng, graph, lines,
                                           kinds=CONSTRAINT_KINDS) or applied)
                if applied is None:
                    continue
                assert not graph.dirty_nets  # constraints dirty no nets
                assert graph.constraints_dirty
                before = solver.stats.snapshot()
                report = incremental.update()
                assert solver.stats.computed == before.computed
                assert solver.stats.memo_hits == before.memo_hits
                assert report.incremental.retimed_nets == 0
                assert report.incremental.required_nets == len(graph)
                constraint_updates += 1
            else:
                if random_edit(rng, graph, lines,
                               kinds=STRUCTURAL_KINDS) is None:
                    continue
                report = incremental.update()
                structural_updates += 1
            assert_reports_identical(report, baseline.analyze(graph))
        assert constraint_updates >= 3, "constraint batches degenerated"
        assert structural_updates >= 3, "structural edits degenerated"

    def test_cone_stays_local_on_chain_tail_edit(self, library, solver, lines):
        graph = parallel_chains(3, 4, lines=[lines[0]], input_slew=ps(100))
        engine = IncrementalEngine(graph, library=library, solver=solver)
        engine.update()
        graph.resize_driver("c1s3", 50.0)  # tail of chain 1: dirties c1s2 too
        report = engine.update()
        assert report.incremental.dirty_nets == 2
        assert report.incremental.retimed_nets == 2  # c1s2, c1s3 — nobody else
        assert_reports_identical(report,
                                 GraphEngine(library=library,
                                             solver=solver).analyze(graph))

    def test_structural_edits_retime_new_topology(self, library, solver,
                                                  lines):
        graph = reconvergent_graph(line=lines[0])
        engine = IncrementalEngine(graph, library=library, solver=solver)
        base = engine.update()
        assert set(base.events["sink"]) == {"rise", "fall"}
        # Cutting the long branch removes the sink's second transition...
        graph.remove_fanout("long_b", "sink")
        after_cut = engine.update()
        assert set(after_cut.events["sink"]) == {"rise"}
        assert_reports_identical(after_cut,
                                 GraphEngine(library=library,
                                             solver=solver).analyze(graph))
        # ...and reconnecting restores it, incrementally.
        graph.add_fanout("long_b", "sink")
        restored = engine.update()
        assert set(restored.events["sink"]) == {"rise", "fall"}
        assert_reports_identical(restored,
                                 GraphEngine(library=library,
                                             solver=solver).analyze(graph))
        assert_reports_identical(restored, base)

    def test_failed_update_invalidates_instead_of_corrupting(self, library,
                                                             solver, lines):
        # A mid-update failure has already consumed the dirty set and dropped
        # part of the event cache; the engine must fall back to a full re-time
        # on the next update instead of serving the half-updated cache.
        from repro.errors import CharacterizationError
        graph = parallel_chains(2, 3, lines=[lines[0]], input_slew=ps(100))
        engine = IncrementalEngine(graph, library=library, solver=solver)
        engine.update()
        graph.resize_driver("c1s0", 50.0)       # valid edit, same update...
        graph.resize_driver("c0s0", 33.333)     # ...uncharacterized size
        with pytest.raises(CharacterizationError):
            engine.update()
        graph.resize_driver("c0s0", 75.0)       # repair the bad edit
        report = engine.update()
        assert report.incremental.retimed_nets == len(graph)  # full fallback
        assert report.n_events == len(graph)    # nothing silently missing
        assert_reports_identical(report,
                                 GraphEngine(library=library,
                                             solver=solver).analyze(graph))
        # The valid edit that rode along with the failure was not lost.
        assert report.events["c1s0"]["rise"].solution.cell_name == "inv_50x"

    def test_invalidate_forces_full_retime(self, library, solver, lines):
        graph = reconvergent_graph(line=lines[0])
        engine = IncrementalEngine(graph, library=library, solver=solver)
        engine.update()
        engine.invalidate()
        report = engine.update()
        assert report.incremental.retimed_nets == len(graph)

    def test_rejects_non_graph(self, library, solver):
        with pytest.raises(ModelingError):
            IncrementalEngine("not a graph", library=library, solver=solver)
