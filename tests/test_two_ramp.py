"""Two-ramp waveform model and the Eq. 1 breakpoint."""

import numpy as np
import pytest

from repro.core import TwoRampWaveform, voltage_breakpoint
from repro.errors import ModelingError
from repro.units import ps


class TestVoltageBreakpoint:
    def test_equation_1(self):
        assert voltage_breakpoint(50.0, 68.0) == pytest.approx(68.0 / 118.0)

    def test_zero_driver_resistance_gives_full_swing_step(self):
        assert voltage_breakpoint(0.0, 68.0) == pytest.approx(1.0)

    def test_weak_driver_gives_small_step(self):
        assert voltage_breakpoint(680.0, 68.0) == pytest.approx(68.0 / 748.0)
        assert voltage_breakpoint(680.0, 68.0) < 0.1

    def test_validation(self):
        with pytest.raises(ModelingError):
            voltage_breakpoint(50.0, 0.0)
        with pytest.raises(ModelingError):
            voltage_breakpoint(-1.0, 68.0)


@pytest.fixture
def two_ramp():
    """f=0.6, Tr1=50 ps, Tr2=200 ps, starting at t=100 ps."""
    return TwoRampWaveform(vdd=1.8, breakpoint_fraction=0.6, tr1=ps(50), tr2=ps(200),
                           t_start=ps(100))


class TestTwoRampShape:
    def test_validation(self):
        with pytest.raises(ModelingError):
            TwoRampWaveform(vdd=0.0, breakpoint_fraction=0.6, tr1=ps(50), tr2=ps(100))
        with pytest.raises(ModelingError):
            TwoRampWaveform(vdd=1.8, breakpoint_fraction=1.5, tr1=ps(50), tr2=ps(100))
        with pytest.raises(ModelingError):
            TwoRampWaveform(vdd=1.8, breakpoint_fraction=0.5, tr1=-ps(50), tr2=ps(100))
        with pytest.raises(ModelingError):
            TwoRampWaveform(vdd=1.8, breakpoint_fraction=0.5, tr1=ps(50), tr2=0.0)

    def test_characteristic_times(self, two_ramp):
        assert two_ramp.breakpoint_time == pytest.approx(ps(100) + 0.6 * ps(50))
        assert two_ramp.breakpoint_voltage == pytest.approx(0.6 * 1.8)
        assert two_ramp.end_time == pytest.approx(two_ramp.breakpoint_time + 0.4 * ps(200))
        assert two_ramp.duration == pytest.approx(two_ramp.end_time - ps(100))

    def test_piecewise_values_match_equation_2(self, two_ramp):
        # First ramp: slope Vdd / Tr1.
        assert two_ramp.value(ps(100)) == pytest.approx(0.0)
        assert two_ramp.value(ps(110)) == pytest.approx(1.8 * ps(10) / ps(50))
        # Breakpoint value.
        assert two_ramp.value(two_ramp.breakpoint_time) == pytest.approx(0.6 * 1.8)
        # Second ramp: slope Vdd / Tr2 beyond the breakpoint.
        delta = ps(20)
        expected = 0.6 * 1.8 + 1.8 * delta / ps(200)
        assert two_ramp.value(two_ramp.breakpoint_time + delta) == pytest.approx(expected)
        # Saturation at the supply.
        assert two_ramp.value(two_ramp.end_time + ps(50)) == pytest.approx(1.8)

    def test_value_before_start_is_zero(self, two_ramp):
        assert two_ramp.value(0.0) == 0.0

    def test_crossing_times_invert_values(self, two_ramp):
        for fraction in (0.1, 0.5, 0.6, 0.75, 0.9):
            t_cross = two_ramp.crossing_time(fraction)
            assert two_ramp.value(t_cross) == pytest.approx(fraction * 1.8, rel=1e-9)

    def test_crossing_below_breakpoint_uses_first_ramp(self, two_ramp):
        assert two_ramp.crossing_time(0.5) == pytest.approx(ps(100) + 0.5 * ps(50))

    def test_crossing_above_breakpoint_uses_second_ramp(self, two_ramp):
        expected = two_ramp.breakpoint_time + (0.9 - 0.6) * ps(200)
        assert two_ramp.crossing_time(0.9) == pytest.approx(expected)

    def test_transition_time_mixes_both_ramps(self, two_ramp):
        t_low = two_ramp.crossing_time(0.1)
        t_high = two_ramp.crossing_time(0.9)
        assert two_ramp.transition_time() == pytest.approx(t_high - t_low)

    def test_delay_to_50pct(self, two_ramp):
        assert two_ramp.delay_to_50pct() == pytest.approx(0.5 * ps(50))

    def test_falling_waveform_is_mirror_image(self):
        rising = TwoRampWaveform(vdd=1.8, breakpoint_fraction=0.6, tr1=ps(50),
                                 tr2=ps(200), rising=True)
        falling = TwoRampWaveform(vdd=1.8, breakpoint_fraction=0.6, tr1=ps(50),
                                  tr2=ps(200), rising=False)
        for t in np.linspace(0, 300e-12, 20):
            assert falling.value(t) == pytest.approx(1.8 - rising.value(t))


class TestSingleRampDegenerate:
    def test_single_ramp_when_fraction_is_one(self):
        single = TwoRampWaveform(vdd=1.8, breakpoint_fraction=1.0, tr1=ps(80), tr2=ps(1))
        assert single.is_single_ramp
        assert single.end_time == pytest.approx(ps(80))
        assert single.crossing_time(0.5) == pytest.approx(ps(40))
        assert single.value(ps(40)) == pytest.approx(0.9)
        assert single.transition_time() == pytest.approx(0.8 * ps(80))


class TestSamplingAndSources:
    def test_waveform_measurements_match_closed_form(self, two_ramp):
        sampled = two_ramp.waveform(t_end=ps(400))
        assert sampled.time_at_level(0.9, rising=True) == pytest.approx(
            two_ramp.crossing_time(0.5), rel=1e-6)
        assert sampled.slew(1.8) == pytest.approx(two_ramp.transition_time(), rel=1e-6)

    def test_pwl_points_cover_corners(self, two_ramp):
        points = two_ramp.pwl_points()
        times = [p[0] for p in points]
        assert two_ramp.t_start in times
        assert two_ramp.breakpoint_time in times
        assert two_ramp.end_time in times
        values = [p[1] for p in points]
        assert max(values) == pytest.approx(1.8)

    def test_as_source_reproduces_values(self, two_ramp):
        source = two_ramp.as_source(t_end=ps(500))
        for t in (ps(100), ps(120), two_ramp.breakpoint_time, ps(250), ps(450)):
            assert source.value(t) == pytest.approx(two_ramp.value(t), abs=1e-9)

    def test_describe(self, two_ramp):
        assert "two-ramp" in two_ramp.describe()
        single = TwoRampWaveform(vdd=1.8, breakpoint_fraction=1.0, tr1=ps(80), tr2=ps(80))
        assert "single-ramp" in single.describe()
