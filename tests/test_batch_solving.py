"""The batched solve path against its scalar oracles.

Every layer of the array pipeline — table interpolation, charge matching, the
masked fixed point, the full driver model, kernel-convolution far ends, and the
memo-aware :meth:`StageSolver.solve_batch` — is compared lane by lane against
the scalar reference it replaces.  The real-arithmetic layers (tables, fixed
point) must match bit for bit; layers that touch complex charge matching or the
far-end transient must agree within 1e-9 relative, the equivalence gate the
benchmarks enforce.
"""

import numpy as np
import pytest

from repro.characterization import default_library
from repro.core import (ModelingOptions, StageRequest, StageSolver,
                        ceff_first_ramp, ceff_first_ramp_batch,
                        ceff_second_ramp, ceff_second_ramp_batch,
                        model_driver_output, model_driver_output_batch,
                        solve_stage, solve_stage_batch)
from repro.core.ceff import AdmittanceBatch
from repro.core.driver_model import _admittance_for
from repro.core.far_end import far_end_response, far_end_response_batch
from repro.core.iteration import _fixed_point, _fixed_point_batch
from repro.errors import ConvergenceError, ModelingError
from repro.experiments.graph_cases import parallel_chains, standard_lines
from repro.sta.batch import GraphEngine
from repro.units import ps


@pytest.fixture(scope="module")
def library():
    return default_library()


@pytest.fixture(scope="module")
def stage_requests(library):
    """A mixed bag of stage configs: every line flavor, both transitions."""
    requests = []
    for i, line in enumerate(standard_lines()):
        for j, size in enumerate((25.0, 75.0, 125.0)):
            options = ModelingOptions(
                transition="rise" if (i + j) % 2 == 0 else "fall")
            requests.append(StageRequest(
                cell=library.get(size), input_slew=ps(60.0 + 10.0 * ((i + j) % 5)),
                line=line, load_capacitance=0.0, options=options))
    return requests


def rel_err(a, b):
    if a == b:
        return 0.0
    return abs(a - b) / max(abs(a), abs(b))


class TestLookupMany:
    def test_matches_scalar_lookup_bitwise(self, library):
        cell = library.get(75.0)
        table, _, _ = cell._tables("rise")
        rng = np.random.default_rng(7)
        rows = rng.uniform(table.row_axis[0] * 0.5, table.row_axis[-1] * 1.5, 64)
        cols = rng.uniform(table.column_axis[0] * 0.5, table.column_axis[-1] * 1.5, 64)
        many = table.lookup_many(rows, cols)
        for k in range(rows.size):
            assert many[k] == table.lookup(rows[k], cols[k])

    def test_cell_accessors_match(self, library):
        cell = library.get(50.0)
        slews = np.array([ps(40.0), ps(90.0), ps(150.0)])
        loads = np.array([1e-14, 5e-14, 2e-13])
        for transition in ("rise", "fall"):
            d = cell.delay_many(slews, loads, transition=transition)
            r = cell.ramp_time_many(slews, loads, transition=transition)
            z = cell.driver_resistance_many(slews, loads, transition=transition)
            for k in range(slews.size):
                assert d[k] == cell.delay(slews[k], loads[k],
                                          transition=transition)
                assert r[k] == cell.ramp_time(slews[k], loads[k],
                                              transition=transition)
                assert z[k] == cell.driver_resistance(slews[k], loads[k],
                                                      transition=transition)


class TestCeffBatch:
    def test_first_and_second_ramp_match_scalar(self):
        admittances = [_admittance_for(line, load, ModelingOptions())
                       for line in standard_lines() for load in (0.0, 5e-14)]
        batch = AdmittanceBatch.from_admittances(admittances)
        n = len(admittances)
        tr1 = np.linspace(2e-11, 2e-10, n)
        tr2 = np.linspace(5e-11, 4e-10, n)
        f = np.linspace(0.3, 0.9, n)
        vdd = np.full(n, 1.8)
        first = ceff_first_ramp_batch(batch, tr1, f, vdd=vdd)
        second = ceff_second_ramp_batch(batch, tr1, tr2, f, vdd=vdd)
        for k, adm in enumerate(admittances):
            assert rel_err(first[k],
                           ceff_first_ramp(adm, tr1[k], f[k], vdd=vdd[k])) < 1e-12
            assert rel_err(second[k],
                           ceff_second_ramp(adm, tr1[k], tr2[k], f[k],
                                            vdd=vdd[k])) < 1e-12

    def test_batch_validation_matches_scalar(self):
        adm = _admittance_for(standard_lines()[0], 0.0, ModelingOptions())
        batch = AdmittanceBatch.from_admittances([adm])
        one = np.ones(1)
        with pytest.raises(ModelingError):
            ceff_first_ramp_batch(batch, -one, 0.5 * one, vdd=one)
        with pytest.raises(ModelingError):
            ceff_first_ramp_batch(batch, one, 1.5 * one, vdd=one)
        with pytest.raises(ModelingError):
            ceff_second_ramp_batch(batch, one, one, one, vdd=one)  # f == 1


class TestFixedPointBatch:
    """Property test: the masked batch replays the scalar iteration exactly.

    The callbacks are pure real arithmetic (elementwise ufuncs), so the batch
    must reproduce the scalar results *bit for bit* — ceff, ramp, iteration
    counts, convergence flags and full histories — including clamped and
    non-convergent lanes.
    """

    @staticmethod
    def lane_functions(a, b, target):
        """A contraction toward ``target`` with tunable gain ``a`` and offset ``b``."""
        def ceff_of_ramp(ramp):
            return target + a * (ramp * 1e-12 - target) + b

        def ramp_of_load(load):
            return load / 1e-12

        return ceff_of_ramp, ramp_of_load

    def run_pair(self, totals, gains, offsets, *, rel_tol=1e-6,
                 max_iterations=60, damping=0.5, require_convergence=False):
        scalars = []
        errors = []
        for lane in range(totals.size):
            ceff_fn, ramp_fn = self.lane_functions(
                gains[lane], offsets[lane], 0.4 * totals[lane])
            try:
                scalars.append(_fixed_point(
                    float(totals[lane]), ceff_fn, ramp_fn, rel_tol=rel_tol,
                    max_iterations=max_iterations, damping=damping,
                    require_convergence=require_convergence))
                errors.append(None)
            except (ModelingError, ConvergenceError) as exc:
                scalars.append(None)
                errors.append(exc)

        def batch_ceff(ramps, lanes):
            return (0.4 * totals[lanes] + gains[lanes]
                    * (ramps * 1e-12 - 0.4 * totals[lanes]) + offsets[lanes])

        def batch_ramp(loads, lanes):
            return loads / 1e-12

        batch = _fixed_point_batch(totals, batch_ceff, batch_ramp,
                                   rel_tol=rel_tol,
                                   max_iterations=max_iterations,
                                   damping=damping,
                                   require_convergence=require_convergence)
        return scalars, errors, batch

    def test_randomized_lanes_bit_identical(self):
        rng = np.random.default_rng(11)
        totals = rng.uniform(5e-14, 5e-13, 32)
        gains = rng.uniform(-0.8, 0.8, 32)       # contractions: all converge
        offsets = np.zeros(32)
        scalars, _, batch = self.run_pair(totals, gains, offsets)
        for scalar, lane in zip(scalars, batch):
            assert lane.ceff == scalar.ceff
            assert lane.ramp_time == scalar.ramp_time
            assert lane.iterations == scalar.iterations
            assert lane.converged == scalar.converged
            assert lane.history == scalar.history

    def test_clamped_and_nonconvergent_lanes(self):
        # Lane 0 converges freely, lane 1 pins against the 2x-total ceiling
        # clamp (its raw proposal is far above it), lane 2 falls into a
        # period-two oscillation and exhausts the iteration budget.
        totals = np.array([1e-13, 2e-13, 3e-13])
        gains = np.array([0.3, 0.0, -3.0])
        offsets = np.array([0.0, 1e-11, 0.0])
        scalars, _, batch = self.run_pair(totals, gains, offsets,
                                          max_iterations=60)
        assert batch[0].converged
        assert batch[1].converged
        assert batch[1].ceff == pytest.approx(2.0 * totals[1], rel=1e-5)
        assert not batch[2].converged
        assert batch[2].iterations == 60
        for scalar, lane in zip(scalars, batch):
            assert lane.ceff == scalar.ceff
            assert lane.iterations == scalar.iterations
            assert lane.converged == scalar.converged
            assert lane.history == scalar.history

    def test_mixed_batch_raises_with_lane_attribution(self):
        # Lane 1 oscillates forever; with require_convergence the batch must
        # raise a ConvergenceError naming it, exactly like the scalar path
        # would for that lane alone.
        totals = np.array([1e-13, 2e-13, 1.5e-13])
        gains = np.array([0.2, -3.0, 0.4])
        offsets = np.zeros(3)
        scalars, errors, _ = self.run_pair(totals, gains, offsets,
                                           require_convergence=False)
        with pytest.raises(ConvergenceError, match=r"lane 1"):
            self.run_pair(totals, gains, offsets, require_convergence=True)
        # The non-raising lanes still match the scalar results bit for bit.
        for scalar in scalars:
            assert scalar is not None

    def test_nonpositive_ramp_names_lane(self):
        totals = np.array([1e-13, 2e-13])

        def batch_ceff(ramps, lanes):
            return -np.ones(lanes.size) * 1e-13  # clamped to the floor

        def bad_ramp(loads, lanes):
            out = loads / 1e-12
            out[lanes == 1] = -1.0
            return out

        with pytest.raises(ModelingError, match=r"lane 1"):
            _fixed_point_batch(totals, batch_ceff, bad_ramp, rel_tol=1e-6,
                               max_iterations=10, damping=0.5,
                               require_convergence=False)

    def test_empty_batch(self):
        assert _fixed_point_batch(
            np.empty(0), lambda v, i: v, lambda v, i: v, rel_tol=1e-6,
            max_iterations=10, damping=0.5, require_convergence=True) == []


class TestDriverModelBatch:
    def test_matches_scalar_model(self, stage_requests):
        requests = [(r.cell, r.input_slew, r.line, r.load_capacitance, r.options)
                    for r in stage_requests]
        batch = model_driver_output_batch(requests)
        for request, model in zip(requests, batch):
            scalar = model_driver_output(*request[:4], options=request[4])
            assert model.kind == scalar.kind
            assert model.transition == scalar.transition
            for attr in ("gate_delay", "tr1", "ceff1", "vdd", "reference_time"):
                assert rel_err(getattr(model, attr),
                               getattr(scalar, attr)) < 1e-12
            if scalar.kind == "two-ramp":
                assert rel_err(model.tr2, scalar.tr2) < 1e-12
                assert rel_err(model.ceff2, scalar.ceff2) < 1e-12

    def test_admittance_cache_dedupes(self, stage_requests):
        requests = [(r.cell, r.input_slew, r.line, r.load_capacitance, r.options)
                    for r in stage_requests]
        cache = {}
        first = model_driver_output_batch(requests, admittance_cache=cache)
        # Four line flavors at one load: four unique admittances.
        assert len(cache) == 4
        again = model_driver_output_batch(requests, admittance_cache=cache)
        for a, b in zip(first, again):
            assert a.gate_delay == b.gate_delay  # cache reuse is exact

    def test_validation_matches_scalar(self, library):
        line = standard_lines()[0]
        cell = library.get(75.0)
        with pytest.raises(ModelingError, match="input slew"):
            model_driver_output_batch([(cell, -1.0, line, 0.0, None)])
        with pytest.raises(ModelingError, match="load capacitance"):
            model_driver_output_batch([(cell, ps(100), line, -1e-15, None)])


class TestFarEndBatch:
    def test_matches_scalar_transient(self, stage_requests):
        models = model_driver_output_batch(
            [(r.cell, r.input_slew, r.line, r.load_capacitance, r.options)
             for r in stage_requests])
        batch = far_end_response_batch(models)
        for model, fast in zip(models, batch):
            slow = far_end_response(model)
            assert fast.rising == slow.rising
            assert rel_err(fast.interconnect_delay(),
                           slow.interconnect_delay()) < 1e-9
            assert rel_err(fast.far_slew(), slow.far_slew()) < 1e-9

    def test_kernel_cache_is_reused(self, stage_requests):
        models = model_driver_output_batch(
            [(r.cell, r.input_slew, r.line, r.load_capacitance, r.options)
             for r in stage_requests])
        cache = {}
        first = far_end_response_batch(models, kernel_cache=cache)
        assert 0 < len(cache) <= len(models)
        kernels = {key: value.copy() for key, value in cache.items()}
        again = far_end_response_batch(models, kernel_cache=cache)
        for key in kernels:
            assert np.array_equal(cache[key][:kernels[key].size], kernels[key])
        for a, b in zip(first, again):
            assert np.array_equal(a.far.values, b.far.values)


class TestSolveStageBatch:
    def test_matches_solve_stage(self, stage_requests):
        batch = solve_stage_batch(stage_requests)
        for request, solution in zip(stage_requests, batch):
            scalar = solve_stage(request.cell, request.input_slew, request.line,
                                 request.load_capacitance,
                                 options=request.options)
            assert solution.fingerprint == scalar.fingerprint
            assert solution.kind == scalar.kind
            assert rel_err(solution.gate_delay, scalar.gate_delay) < 1e-9
            assert rel_err(solution.interconnect_delay,
                           scalar.interconnect_delay) < 1e-9
            assert rel_err(solution.far_slew, scalar.far_slew) < 1e-9
            assert rel_err(solution.propagated_slew,
                           scalar.propagated_slew) < 1e-9
            assert solution.has_waveforms


class TestSolverSolveBatch:
    def test_memo_dupe_and_store_semantics(self, stage_requests, tmp_path):
        solver = StageSolver(persistent=tmp_path)
        work = list(stage_requests) + list(stage_requests[:4])
        solved = solver.solve_batch(work)
        assert len(solved) == len(work)
        stats = solver.stats
        assert stats.computed == len(stage_requests)
        assert stats.batched_solves == len(stage_requests)
        assert stats.batch_fill_rate == 1.0
        assert stats.memo_hits == 4  # batch-local duplicates
        # Results land in the memo (and duplicates share the same object).
        for early, late in zip(solved[:4], solved[-4:]):
            assert early is late
        # A fresh solver against the same store answers from disk.
        cold = StageSolver(persistent=tmp_path)
        again = cold.solve_batch(stage_requests)
        assert cold.stats.persistent_hits == len(stage_requests)
        assert cold.stats.computed == 0
        for a, b in zip(solved, again):
            assert a.gate_delay == b.gate_delay

    def test_need_waveforms_recomputes_scalar_only_entries(self, stage_requests):
        solver = StageSolver()
        lite = stage_requests[0]
        first = solver.solve_batch([lite])[0]
        solver._remember(first.lite())  # simulate a scalar-only cached entry
        second = solver.solve_batch([lite], need_waveforms=True)[0]
        assert second.has_waveforms
        assert solver.stats.computed == 2

    def test_batch_results_identical_to_scalar_solve_path(self, stage_requests):
        batch_solver = StageSolver()
        scalar_solver = StageSolver()
        batch = batch_solver.solve_batch(stage_requests)
        for request, solution in zip(stage_requests, batch):
            scalar = scalar_solver.solve(request.cell, request.input_slew,
                                         request.line, request.load_capacitance,
                                         options=request.options)
            assert solution.fingerprint == scalar.fingerprint
            assert rel_err(solution.stage_delay, scalar.stage_delay) < 1e-9


class TestEngineEquivalence:
    def test_batched_analysis_matches_naive_loop(self, library):
        graph = parallel_chains(3, 4)
        with GraphEngine(library=library, jobs=1) as engine:
            naive = engine.analyze(graph, memoize=False, jobs=1)
            batched = engine.analyze(graph, jobs=1)
        assert naive.stats.batched_solves == 0
        assert batched.stats.batched_solves == batched.stats.computed > 0
        for name, per_net in naive.events.items():
            for transition, event in per_net.items():
                other = batched.events[name][transition]
                assert event.output_arrival == pytest.approx(
                    other.output_arrival, rel=1e-9)
                assert event.early_output_arrival == pytest.approx(
                    other.early_output_arrival, rel=1e-9)
                assert event.solution.far_slew == pytest.approx(
                    other.solution.far_slew, rel=1e-9)

    def test_jobs_one_never_constructs_a_pool(self, library, monkeypatch):
        import repro.sta.batch as batch_module

        def boom(*args, **kwargs):
            raise AssertionError("jobs=1 must not construct a ProcessPoolExecutor")

        monkeypatch.setattr(batch_module, "ProcessPoolExecutor", boom)
        graph = parallel_chains(2, 2)
        with GraphEngine(library=library, jobs=1) as engine:
            report = engine.analyze(graph, jobs=1)
        assert report.jobs == 1
        assert report.stats.batched_solves == report.stats.computed
