"""The compiled (struct-of-arrays) scale tier vs the object engine.

The contract under test, layer by layer:

* ``compile_graph`` + ``GraphEngine.analyze_compiled`` produce events that are
  **exactly equal** (not just within tolerance) to the object engine's, on
  random DAGs, in every analysis mode, including merge tie-breaks, sources,
  required times and slacks — the array sweeps are a reimplementation of the
  same semantics, so nothing short of equality is acceptable;
* results are independent of net declaration order (the vectorized lexsort
  tie-break mirrors the object engine's ``max()`` over (arrival, slew, source)
  tuples);
* the levelized-partition seam (``partitions=N`` with explicit boundary-event
  exchange) is bit-identical to the monolithic sweep;
* :class:`StreamingTimingReport` answers every report query like the eager
  report and serializes to the identical payload;
* the session routes large graphs through the compiled path by
  ``compile_threshold`` and caches the compiled twin until a structural edit
  bumps the graph version;
* warm :meth:`TimingSession.update` calls rebuild only the dirty cone's event
  records (``meta.report_events_rebuilt``), sharing the rest with the previous
  report by identity.
"""

import random

import pytest
from test_sta_dual_mode import random_dag

from repro.api import (
    SessionConfig,
    StreamingTimingReport,
    TimingReport,
    TimingSession,
    compare_reports,
)
from repro.api.report import TimingEvent
from repro.core import StageSolver
from repro.errors import ModelingError
from repro.experiments import soc_graph
from repro.interconnect import RLCLine
from repro.sta import GraphEngine, TimingGraph
from repro.units import mm, nH, pF, ps


@pytest.fixture(scope="module")
def lines():
    """Two cheap-to-solve line flavors (short wires keep the test quick)."""
    return [RLCLine(resistance=20.0, inductance=nH(1.05), capacitance=pF(0.22),
                    length=mm(1)),
            RLCLine(resistance=38.0, inductance=nH(2.1), capacitance=pF(0.42),
                    length=mm(2))]


@pytest.fixture(scope="module")
def solver():
    """One memo shared by every engine in this module (results are memo-safe)."""
    return StageSolver()


@pytest.fixture(scope="module")
def engine(library, solver):
    return GraphEngine(library=library, solver=solver)


def shared_session(solver, **config) -> TimingSession:
    """A session on the shipped (process-shared) library and this module's memo."""
    session = TimingSession(SessionConfig(**config)) if config else TimingSession()
    session.solver = solver
    session._engine.solver = solver
    return session


def assert_equivalent(engine, graph, *, mode="both", partitions=None):
    """Object-engine and compiled analyses of ``graph`` are exactly equal."""
    report = engine.analyze(graph, mode=mode)
    compiled = engine.compile(graph)
    analysis = engine.analyze_compiled(graph, compiled=compiled, mode=mode,
                                       partitions=partitions)
    n_events = sum(len(per_net) for per_net in report.events.values())
    assert analysis.n_events == n_events
    for name, per_net in report.events.items():
        compiled_events = analysis.events_of(name)
        assert set(per_net) == set(compiled_events)
        for transition, event in per_net.items():
            assert TimingEvent.from_net_event(event) == compiled_events[transition]
    assert ([(e.net.name, e.input_transition) for e in report.critical_path()]
            == [analysis.key_of(e) for e in analysis.critical_path_ids()])
    return analysis


def constrain_randomly(rng, graph):
    """A random dual-mode constraint landscape (clock, margin, pins)."""
    if rng.random() < 0.8:
        graph.set_clock_period(ps(700),
                               hold_margin=rng.choice([None, 0.0, ps(40)]))
    for name in rng.sample(sorted(graph.nets), k=min(2, len(graph.nets))):
        graph.set_required(name, rng.choice([ps(300), ps(650)]),
                           transition=rng.choice([None, "rise", "fall"]))
    for name in rng.sample(sorted(graph.nets), k=min(2, len(graph.nets))):
        graph.set_required(name, rng.choice([ps(30), ps(90)]),
                           transition=rng.choice([None, "rise", "fall"]),
                           mode="hold")


class TestCompiledEquivalence:
    @pytest.mark.parametrize("seed", [3, 14, 23])
    def test_random_dags_match_object_engine(self, engine, lines, seed):
        rng = random.Random(seed)
        graph = random_dag(rng, lines, n_nets=rng.choice([12, 16, 20]))
        constrain_randomly(rng, graph)
        assert_equivalent(engine, graph, mode="both")

    @pytest.mark.parametrize("mode", ["setup", "hold", "both"])
    def test_every_mode_matches(self, engine, lines, mode):
        rng = random.Random(101)
        graph = random_dag(rng, lines, n_nets=14)
        constrain_randomly(rng, graph)
        assert_equivalent(engine, graph, mode=mode)

    def test_declaration_order_independence(self, engine, lines):
        """Shuffling net declaration order changes nothing (tie-break parity)."""
        rng = random.Random(53)
        graph = random_dag(rng, lines, n_nets=18)
        graph.set_clock_period(ps(700), hold_margin=0.0)
        baseline = assert_equivalent(engine, graph)
        shuffled_nets = list(graph.nets.values())
        rng.shuffle(shuffled_nets)
        shuffled = TimingGraph(shuffled_nets, dict(graph.primary_inputs))
        shuffled.set_clock_period(ps(700), hold_margin=0.0)
        analysis = assert_equivalent(engine, shuffled)
        for name in graph.nets:
            assert baseline.events_of(name) == analysis.events_of(name)

    def test_partitioned_sweep_is_bit_identical(self, engine, lines):
        rng = random.Random(84)
        graph = random_dag(rng, lines, n_nets=20)
        constrain_randomly(rng, graph)
        assert_equivalent(engine, graph, partitions=3)

    def test_soc_graph_shape_and_equivalence(self, engine):
        graph = soc_graph(125)
        assert len(graph) == 125
        graph.set_clock_period(ps(1500), hold_margin=0.0)
        analysis = assert_equivalent(engine, graph, partitions=2)
        assert analysis.worst_endpoint_slack("setup") is not None
        assert analysis.worst_endpoint_slack("hold") is not None

    def test_stale_compiled_graph_is_rejected(self, engine, lines):
        graph = soc_graph(125)
        compiled = engine.compile(graph)
        engine.analyze_compiled(graph, compiled=compiled)  # fine while fresh
        graph.resize_driver("k0c0s3", 125.0)  # structural edit bumps version
        with pytest.raises(ModelingError):
            engine.analyze_compiled(graph, compiled=compiled)

    def test_constraints_do_not_stale_the_compiled_graph(self, engine):
        graph = soc_graph(125)
        compiled = engine.compile(graph)
        graph.set_clock_period(ps(900))  # constraints are read live
        analysis = engine.analyze_compiled(graph, compiled=compiled)
        assert analysis.constrained("setup")


class TestStreamingReport:
    @pytest.fixture(scope="class")
    def reports(self, solver):
        session = shared_session(solver, compile_threshold=1)
        graph = soc_graph(125)
        graph.set_clock_period(ps(1500), hold_margin=0.0)
        streaming = session.time(graph, name="soc")
        plain = session.time(graph, name="soc", compiled=False)
        return streaming, plain

    def test_routing_types(self, reports):
        streaming, plain = reports
        assert isinstance(streaming, StreamingTimingReport)
        assert isinstance(plain, TimingReport)
        assert not isinstance(plain, StreamingTimingReport)

    def test_queries_match_plain_report(self, reports):
        streaming, plain = reports
        assert streaming.n_events == plain.n_events
        assert streaming.constrained and streaming.hold_constrained
        assert streaming.wns == plain.wns
        assert streaming.whs == plain.whs
        assert streaming.worst_slack == plain.worst_slack
        assert streaming.worst_hold_slack == plain.worst_hold_slack
        assert streaming.event_keys() == plain.event_keys()
        assert streaming.endpoint_keys() == plain.endpoint_keys()
        assert streaming.critical_path == plain.critical_path
        assert streaming.worst_event() == plain.worst_event()
        for mode in ("setup", "hold"):
            assert (streaming.endpoint_slacks(mode=mode)
                    == plain.endpoint_slacks(mode=mode))
            assert (streaming.format_slack_table(mode=mode)
                    == plain.format_slack_table(mode=mode))
        name = plain.critical_path[-1][0]
        assert streaming.slack(name) == plain.slack(name)
        assert streaming.arrival(name) == plain.arrival(name)
        assert streaming.early_arrival(name) == plain.early_arrival(name)

    def test_serialization_matches_plain_report(self, reports):
        streaming, plain = reports
        eager, full = streaming.to_dict(), plain.to_dict()
        eager.pop("meta"), full.pop("meta")
        assert eager == full
        # A saved streaming report loads back as a plain (eager) report.
        loaded = TimingReport.from_json(streaming.to_json())
        assert loaded.event_keys() == plain.event_keys()
        assert loaded.wns == plain.wns

    def test_compile_metadata(self, reports):
        streaming, _ = reports
        assert streaming.meta.compile_seconds is not None
        assert streaming.meta.peak_rss_bytes is None or (
            streaming.meta.peak_rss_bytes > 0)

    def test_diff_streaming_vs_plain(self, reports):
        streaming, plain = reports
        diff = compare_reports(plain, streaming)
        assert not diff.regressed
        assert not diff.changed_endpoints and not diff.changed_hold_endpoints
        assert diff.added_events == diff.removed_events == 0


class TestSessionRouting:
    def test_threshold_routes_and_none_disables(self, solver):
        graph = soc_graph(125)
        graph.set_clock_period(ps(1500))
        session = shared_session(solver, compile_threshold=100)
        assert isinstance(session.time(graph), StreamingTimingReport)
        below = shared_session(solver, compile_threshold=1000)
        assert not isinstance(below.time(graph), StreamingTimingReport)
        disabled = shared_session(solver, compile_threshold=None)
        assert not isinstance(disabled.time(graph), StreamingTimingReport)
        # Explicit override beats the threshold in both directions.
        assert isinstance(disabled.time(graph, compiled=True),
                          StreamingTimingReport)

    def test_compiled_rejects_memoize_false(self, solver):
        session = shared_session(solver)
        graph = soc_graph(125)
        with pytest.raises(ModelingError):
            session.time(graph, compiled=True, memoize=False)

    def test_compiled_cache_tracks_graph_version(self, solver):
        session = shared_session(solver, compile_threshold=1)
        graph = soc_graph(125)
        graph.set_clock_period(ps(1500))
        first = session.time(graph)
        assert first.meta.compile_seconds > 0.0  # fresh compile
        second = session.time(graph)
        assert second.meta.compile_seconds == 0.0  # cache hit
        graph.set_clock_period(ps(900))
        third = session.time(graph)  # constraint edits keep the cache warm
        assert third.meta.compile_seconds == 0.0
        assert third.worst_slack < first.worst_slack  # new constraints apply
        graph.resize_driver("k0c0s3", 125.0)
        fourth = session.time(graph)  # parameter edit patches in place
        assert fourth.meta.compile_seconds == 0.0
        assert fourth.meta.patched_nets == 2  # the net and its fanin driver
        arrivals = lambda report: {t: e.output_arrival  # noqa: E731
                                   for t, e in report.events["k0c0s4"].items()}
        assert arrivals(fourth) != arrivals(third)  # the resize took effect
        graph.add_fanout("k0c0s3", "k0e0")
        fifth = session.time(graph)  # topology edit forces a recompile
        assert fifth.meta.compile_seconds > 0.0
        assert not fifth.meta.patched_nets

    def test_config_round_trip_carries_threshold(self):
        config = SessionConfig(compile_threshold=777)
        assert SessionConfig.from_dict(config.to_dict()) == config
        assert SessionConfig.from_dict(
            SessionConfig(compile_threshold=None).to_dict()
        ).compile_threshold is None
        with pytest.raises(ModelingError):
            SessionConfig(compile_threshold=0)


class TestIncrementalReportReuse:
    def test_warm_update_rebuilds_only_the_cone(self, solver, lines):
        rng = random.Random(82)
        graph = random_dag(rng, lines, n_nets=20)
        graph.set_clock_period(ps(900))
        session = shared_session(solver)
        first = session.update(graph)
        assert first.meta.report_events_rebuilt is None  # full build
        target = sorted(graph.nets)[10]
        graph.resize_driver(target, 125.0)
        second = session.update(graph)
        rebuilt = second.meta.report_events_rebuilt
        assert rebuilt is not None and 0 < rebuilt < second.n_events
        # Untouched nets share their event records with the previous report.
        changed = session._incremental.last_changed_nets
        changed_events = session._incremental.last_changed_events
        touched = set(changed) | {name for name, _ in changed_events}
        for name in second.events:
            if name not in touched:
                assert second.events[name] is first.events[name]
        # And the reused report is still exactly a full re-flatten.
        full = session.time(graph, name="graph", compiled=False)
        warm_payload, full_payload = second.to_dict(), full.to_dict()
        warm_payload.pop("meta"), full_payload.pop("meta")
        assert warm_payload == full_payload

    def test_constraint_only_update_reuses_events(self, solver, lines):
        rng = random.Random(13)
        graph = random_dag(rng, lines, n_nets=16)
        graph.set_clock_period(ps(900))
        session = shared_session(solver)
        first = session.update(graph)
        graph.set_clock_period(ps(800))
        second = session.update(graph)
        rebuilt = second.meta.report_events_rebuilt
        assert rebuilt is not None
        full = session.time(graph, name="graph", compiled=False)
        warm_payload, full_payload = second.to_dict(), full.to_dict()
        warm_payload.pop("meta"), full_payload.pop("meta")
        assert warm_payload == full_payload
        assert first.meta.report_events_rebuilt is None
