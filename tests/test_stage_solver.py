"""Memoized stage solving: fingerprints, cache layers, and exactness guarantees."""

import json

import pytest

from repro.core import (ModelingOptions, StageSolution, StageSolutionStore,
                        StageSolver, far_end_response, model_driver_output,
                        solve_stage, stage_fingerprint)
from repro.errors import ModelingError
from repro.interconnect import RLCLine
from repro.interconnect.parasitics import LineParasitics
from repro.units import mm, nH, pF, ps


@pytest.fixture(scope="module")
def line():
    return RLCLine(resistance=20.0, inductance=nH(1.05), capacitance=pF(0.22),
                   length=mm(1))


@pytest.fixture(scope="module")
def other_line():
    return RLCLine(resistance=38.0, inductance=nH(2.1), capacitance=pF(0.42),
                   length=mm(2))


class TestFingerprints:
    def test_line_fingerprint_is_stable_and_content_keyed(self, line):
        twin = RLCLine(resistance=20.0, inductance=nH(1.05), capacitance=pF(0.22),
                       length=mm(1))
        assert line.fingerprint() == twin.fingerprint()
        changed = RLCLine(resistance=20.5, inductance=nH(1.05),
                          capacitance=pF(0.22), length=mm(1))
        assert line.fingerprint() != changed.fingerprint()

    def test_line_fingerprint_distinguishes_missing_length(self, line):
        no_length = RLCLine(resistance=20.0, inductance=nH(1.05),
                            capacitance=pF(0.22))
        assert line.fingerprint() != no_length.fingerprint()

    def test_parasitics_fingerprint(self):
        a = LineParasitics(resistance_per_length=2e4,
                           inductance_per_length=1.05e-6,
                           capacitance_per_length=2.2e-10)
        b = LineParasitics(resistance_per_length=2e4,
                           inductance_per_length=1.05e-6,
                           capacitance_per_length=2.2e-10)
        c = LineParasitics(resistance_per_length=2.1e4,
                           inductance_per_length=1.05e-6,
                           capacitance_per_length=2.2e-10)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()

    def test_cell_fingerprint_keys_on_identity_and_tables(self, cell75, cell100):
        assert cell75.fingerprint() == cell75.fingerprint()
        assert cell75.fingerprint() != cell100.fingerprint()

    def test_stage_fingerprint_covers_every_input(self, cell75, line, other_line):
        base = stage_fingerprint(cell75, ps(100), line, 1e-14, ModelingOptions())
        assert base == stage_fingerprint(cell75, ps(100), line, 1e-14,
                                         ModelingOptions())
        assert base != stage_fingerprint(cell75, ps(101), line, 1e-14,
                                         ModelingOptions())
        assert base != stage_fingerprint(cell75, ps(100), other_line, 1e-14,
                                         ModelingOptions())
        assert base != stage_fingerprint(cell75, ps(100), line, 2e-14,
                                         ModelingOptions())
        assert base != stage_fingerprint(cell75, ps(100), line, 1e-14,
                                         ModelingOptions(transition="fall"))
        assert base != stage_fingerprint(cell75, ps(100), line, 1e-14,
                                         ModelingOptions(ceff_damping=0.4))
        assert base != stage_fingerprint(cell75, ps(100), line, 1e-14,
                                         ModelingOptions(), slew_high=0.8)


class TestSolveStage:
    def test_matches_direct_modeling_flow(self, cell75, line):
        options = ModelingOptions(transition="fall")
        solution = solve_stage(cell75, ps(100), line, 1.5e-14, options=options)
        model = model_driver_output(cell75, ps(100), line, 1.5e-14, options=options)
        far = far_end_response(model)
        assert solution.gate_delay == model.delay()
        assert solution.interconnect_delay == far.interconnect_delay()
        assert solution.far_slew == far.far_slew()
        assert solution.propagated_slew == pytest.approx(solution.far_slew / 0.8)
        assert solution.has_waveforms
        assert solution.kind == model.kind
        assert solution.stage_delay == solution.gate_delay + solution.interconnect_delay

    def test_payload_roundtrip(self, cell75, line):
        solution = solve_stage(cell75, ps(100), line, 1.5e-14,
                               options=ModelingOptions(transition="fall"))
        restored = StageSolution.from_payload(
            json.loads(json.dumps(solution.to_payload())))
        assert restored == solution.lite()
        assert not restored.has_waveforms

    def test_payload_version_guard(self, cell75, line):
        payload = solve_stage(cell75, ps(100), line, 1.5e-14,
                              options=ModelingOptions(transition="fall")).to_payload()
        payload["version"] = 999
        with pytest.raises(ModelingError):
            StageSolution.from_payload(payload)


class TestStageSolver:
    def test_memo_hit_returns_identical_solution(self, cell75, line):
        solver = StageSolver()
        options = ModelingOptions(transition="fall")
        first = solver.solve(cell75, ps(100), line, 1e-14, options=options)
        second = solver.solve(cell75, ps(100), line, 1e-14, options=options)
        assert first is second
        assert solver.stats.computed == 1
        assert solver.stats.memo_hits == 1
        assert solver.stats.hit_rate == pytest.approx(0.5)

    def test_memoize_false_bypasses_but_matches(self, cell75, line):
        solver = StageSolver()
        options = ModelingOptions(transition="fall")
        cached = solver.solve(cell75, ps(100), line, 1e-14, options=options)
        fresh = solver.solve(cell75, ps(100), line, 1e-14, options=options,
                             memoize=False)
        assert fresh is not cached
        assert fresh.lite() == cached.lite()
        assert solver.stats.computed == 2

    def test_lru_bound(self, cell75, line, other_line):
        solver = StageSolver(memo_size=2)
        for slew in (ps(80), ps(100), ps(120)):
            solver.solve(cell75, slew, line, 1e-14,
                         options=ModelingOptions(transition="fall"))
        assert len(solver) == 2

    def test_need_waveforms_upgrades_lite_entries(self, cell75, line):
        solver = StageSolver()
        options = ModelingOptions(transition="fall")
        lite = solve_stage(cell75, ps(100), line, 1e-14,
                           options=options).lite()
        solver.install(lite)
        scalar = solver.solve(cell75, ps(100), line, 1e-14, options=options)
        assert scalar is lite  # installed entry answers scalar requests
        full = solver.solve(cell75, ps(100), line, 1e-14, options=options,
                            need_waveforms=True)
        assert full.has_waveforms
        assert full.lite() == lite

    def test_persistent_store_roundtrip(self, cell75, line, tmp_path):
        options = ModelingOptions(transition="fall")
        writer = StageSolver(persistent=tmp_path)
        computed = writer.solve(cell75, ps(100), line, 1e-14, options=options)
        assert len(writer.store) == 1

        reader = StageSolver(persistent=tmp_path)
        restored = reader.solve(cell75, ps(100), line, 1e-14, options=options)
        assert reader.stats.persistent_hits == 1
        assert reader.stats.computed == 0
        assert restored == computed.lite()

    def test_corrupt_persistent_entry_heals(self, cell75, line, tmp_path):
        options = ModelingOptions(transition="fall")
        writer = StageSolver(persistent=tmp_path)
        solution = writer.solve(cell75, ps(100), line, 1e-14, options=options)
        path = writer.store.path_for(solution.fingerprint)
        path.write_text("{ not json")

        reader = StageSolver(persistent=tmp_path)
        with pytest.warns(RuntimeWarning, match="corrupt"):
            recovered = reader.solve(cell75, ps(100), line, 1e-14, options=options)
        assert recovered.lite() == solution.lite()
        assert reader.stats.computed == 1
        # The healed entry is rewritten and serves the next process.
        assert StageSolutionStore(tmp_path).get(solution.fingerprint) is not None

    def test_slew_quantum_buckets_nearby_slews(self, cell75, line):
        solver = StageSolver(slew_quantum=ps(1.0))
        options = ModelingOptions(transition="fall")
        a = solver.solve(cell75, ps(100.2), line, 1e-14, options=options)
        b = solver.solve(cell75, ps(99.9), line, 1e-14, options=options)
        assert a is b
        assert a.input_slew == pytest.approx(ps(100.0))
        assert solver.stats.memo_hits == 1

    def test_validation(self):
        with pytest.raises(ModelingError):
            StageSolver(memo_size=-1)
        with pytest.raises(ModelingError):
            StageSolver(slew_quantum=0.0)
