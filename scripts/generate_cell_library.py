#!/usr/bin/env python
"""Generate the shipped pre-characterized cell library.

Characterizes the driver sizes used by the paper's experiments (25X to 125X) over
the default (input slew, load) grid with the circuit simulator and writes one JSON
file per cell into ``src/repro/data/cells``.  Re-run this script after changing the
technology or the MOSFET model.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.characterization import (CellLibrary, CharacterizationGrid,
                                    characterize_inverter, shipped_data_directory)
from repro.tech import InverterSpec, generic_180nm

DEFAULT_SIZES = (25.0, 50.0, 75.0, 100.0, 125.0)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=float, nargs="+", default=list(DEFAULT_SIZES),
                        help="driver sizes (X) to characterize")
    parser.add_argument("--output", type=Path, default=shipped_data_directory(),
                        help="output directory for the JSON files")
    parser.add_argument("--coarse", action="store_true",
                        help="use the small test grid instead of the full grid")
    args = parser.parse_args(argv)

    tech = generic_180nm()
    grid = CharacterizationGrid.coarse() if args.coarse else CharacterizationGrid.default()
    library = CellLibrary(tech=tech)

    for size in args.sizes:
        spec = InverterSpec(tech=tech, size=size)
        start = time.time()
        print(f"characterizing {spec.describe()} ...", flush=True)
        cell = characterize_inverter(spec, grid=grid)
        library.add(cell)
        print(f"  done in {time.time() - start:.1f} s "
              f"(Rs_rise @ max load = "
              f"{cell.driver_resistance(cell.input_slews[2], cell.max_load):.1f} ohm)",
              flush=True)

    output = library.save_to_directory(args.output)
    print(f"wrote {len(library)} cells to {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
