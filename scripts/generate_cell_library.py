#!/usr/bin/env python
"""Generate the shipped pre-characterized cell library.

Characterizes the driver sizes used by the paper's experiments (25X to 125X) over
the default (input slew, load) grid with the circuit simulator and writes one JSON
file per cell into ``src/repro/data/cells``.  Re-run this script after changing the
technology or the MOSFET model.

Workflow
--------
* Shipped data lives in ``src/repro/data/cells/*.json`` (one file per cell); the
  test suite and ``repro.characterization.default_library()`` read it from there.
* ``--jobs N`` fans the per-(direction, slew, load) simulations of each cell
  across N worker processes (default: one per CPU); ``--jobs 1`` forces the
  serial engine.
* ``--coarse`` swaps in the small test grid for quick experiments.
* Every characterization also lands in the persistent cache (override its
  location with ``--cache-dir`` or the ``REPRO_CACHE_DIR`` environment
  variable), so re-running the script — or any other process requesting the
  same cells — completes near-instantly from cache.  ``--no-cache`` bypasses it.

Examples::

    PYTHONPATH=src python scripts/generate_cell_library.py              # full grid
    PYTHONPATH=src python scripts/generate_cell_library.py --jobs 8     # 8 workers
    PYTHONPATH=src python scripts/generate_cell_library.py --coarse --sizes 40 60
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.characterization import (CellLibrary, CharacterizationCache,
                                    CharacterizationGrid,
                                    cached_characterize_inverter,
                                    characterize_inverter_parallel,
                                    shipped_data_directory)
from repro.characterization.parallel import resolve_jobs
from repro.errors import CharacterizationError
from repro.tech import InverterSpec, generic_180nm

DEFAULT_SIZES = (25.0, 50.0, 75.0, 100.0, 125.0)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--sizes", type=float, nargs="+", default=list(DEFAULT_SIZES),
                        help="driver sizes (X) to characterize")
    parser.add_argument("--output", type=Path, default=shipped_data_directory(),
                        help="output directory for the JSON files")
    parser.add_argument("--coarse", action="store_true",
                        help="use the small test grid instead of the full grid")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes per cell (default: CPU count; 1 = serial)")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="persistent characterization cache directory "
                             "(default: $REPRO_CACHE_DIR or ~/.cache/repro/cells)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore the persistent cache and re-simulate everything")
    args = parser.parse_args(argv)
    try:
        jobs = resolve_jobs(args.jobs)
    except CharacterizationError as exc:
        parser.error(str(exc))

    tech = generic_180nm()
    grid = CharacterizationGrid.coarse() if args.coarse else CharacterizationGrid.default()
    cache = CharacterizationCache(args.cache_dir)
    library = CellLibrary(tech=tech, cache=cache)
    points = len(grid.input_slews) * len(grid.loads) * 2

    print(f"characterizing {len(args.sizes)} cells "
          f"({points} simulations each, {jobs} worker{'s' if jobs != 1 else ''}, "
          f"cache: {'disabled' if args.no_cache else cache.directory})", flush=True)

    total_start = time.time()
    for size in args.sizes:
        spec = InverterSpec(tech=tech, size=size)
        start = time.time()
        print(f"characterizing {spec.describe()} ...", flush=True)

        def show_progress(done: int, total: int) -> None:
            if done == total or done % 25 == 0:
                print(f"  {done}/{total} points", flush=True)

        if args.no_cache:
            was_cached = False
            cell = characterize_inverter_parallel(
                spec, grid=grid, jobs=jobs, progress=show_progress)
        else:
            cell, was_cached = cached_characterize_inverter(
                spec, grid=grid, cache=cache, jobs=jobs, progress=show_progress)
        library.add(cell)
        source = "cache hit" if was_cached else f"{time.time() - start:.1f} s"
        print(f"  done ({source}; Rs_rise @ max load = "
              f"{cell.driver_resistance(cell.input_slews[2], cell.max_load):.1f} ohm)",
              flush=True)

    output = library.save_to_directory(args.output)
    print(f"wrote {len(library)} cells to {output} "
          f"in {time.time() - total_start:.1f} s total")
    return 0


if __name__ == "__main__":
    sys.exit(main())
