#!/usr/bin/env python
"""Generate the shipped pre-characterized cell library.

Thin wrapper over the package CLI: everything here is equivalent to

    PYTHONPATH=src python -m repro characterize --output src/repro/data/cells ...

(the one front door for characterization — a ``TimingSession`` owning the
persistent cache and the worker pool).  The script exists so the documented
regeneration command keeps working and defaults the output to the shipped data
directory.

Workflow
--------
* Shipped data lives in ``src/repro/data/cells/*.json`` (one file per cell); the
  test suite and ``repro.characterization.default_library()`` read it from there.
* ``--jobs N`` fans the per-(direction, slew, load) simulations of each cell
  across N worker processes (default: one per CPU); ``--jobs 1`` forces the
  serial engine.
* ``--coarse`` swaps in the small test grid for quick experiments.
* Every characterization also lands in the persistent cache (override its
  location with ``--cache-dir`` or the ``REPRO_CACHE_DIR`` environment
  variable), so re-running the script — or any other process requesting the
  same cells — completes near-instantly from cache.  ``--no-cache`` bypasses it.

Examples::

    PYTHONPATH=src python scripts/generate_cell_library.py              # full grid
    PYTHONPATH=src python scripts/generate_cell_library.py --jobs 8     # 8 workers
    PYTHONPATH=src python scripts/generate_cell_library.py --coarse --sizes 40 60
"""

from __future__ import annotations

import os
import sys

from repro.api.cli import main as cli_main
from repro.characterization import shipped_data_directory


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Defaults the CLI does not share: write into the shipped data directory and
    # use every CPU (argparse lets later flags override these).
    forwarded = ["characterize", "--output", str(shipped_data_directory()),
                 "--jobs", str(max(os.cpu_count() or 1, 1))]
    return cli_main(forwarded + argv)


if __name__ == "__main__":
    sys.exit(main())
