#!/usr/bin/env python
"""Compare the ``tracked`` sections of benchmark reports against a baseline.

Benchmark JSONs under ``benchmarks/reports/BENCH_*.json`` are split into two
sections: ``tracked`` holds machine-independent facts (workload shape, unique
solve counts, cache hit rates, asserted floors) and ``machine`` holds wall
times and measured speedups.  Only ``tracked`` is meaningful to diff across
runs — this script compares it field by field and exits nonzero on any drift,
so CI can run the benchmarks on whatever runner it gets and still catch real
changes (a workload that silently shrank, a cache hit rate that moved, a floor
that was relaxed) without chasing wall-clock noise.

Beyond the baseline diff, a few tracked fields are *required outright*
(:data:`REQUIRED_TRACKED`): the dual-mode counters of the incremental
benchmark — the zero-extra-solve guarantee and the hold-cone sizes — and the
naive-subset facts, batch counters and uncached-speedup floor of the
throughput benchmark, the 100k-net workload plus throughput/memory gates
of the scale benchmark, and the serve daemon's read-path gates (warm queries
re-run nothing; edit round-trips re-time only the dirty cone) must be present
in every fresh report (with the pinned
value, where one is given), so dual-mode, array-batching and scale-tier
coverage cannot silently disappear even if the committed baseline is
regenerated.  A few tracked fields are *volatile* (:data:`VOLATILE_TRACKED`):
required-present but skipped by the equality diff.

Usage::

    python scripts/compare_bench_reports.py BASELINE_DIR CURRENT_DIR

BASELINE_DIR is typically a snapshot of the committed ``benchmarks/reports``
taken before the benchmarks ran; CURRENT_DIR the directory they wrote into.
Baseline files missing from CURRENT_DIR fail the comparison; extra BENCH files
in CURRENT_DIR (a newly added benchmark) are reported but do not fail.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Tracked fields every fresh report must carry: ``path`` -> pinned value
#: (``...`` means "present, any value").  These guard workload coverage that
#: the plain baseline diff cannot — a regenerated baseline could silently
#: drop them, a required field cannot be dropped.
REQUIRED_TRACKED = {
    "BENCH_incremental.json": {
        "hold.dual_mode_extra_solves": 0,  # dual-mode adds zero stage solves
        "hold.single_edit.hold_cone_nets": ...,
        "hold.single_edit.setup_cone_nets": ...,
        # Report reuse: warm updates must re-flatten a cone's worth of
        # events, and the count must stay tracked.
        "edits[0].report_events_rebuilt": ...,
        # Compiled scale tier: parameter edits patch the CSR arrays in
        # place — never a recompile — and the final incremental planes
        # equal a from-scratch compiled analysis bit for bit.
        "compiled.nets": 100000,
        "compiled.edit_cycles": 200,
        "compiled.speedup_floor": 10.0,
        "compiled.patch_compile_seconds": 0.0,
        "compiled.equivalence_exact": True,
        "compiled.retimed_nets": ...,
        "compiled.report_events_rebuilt": ...,
    },
    "BENCH_scale.json": {
        "nets": 100000,  # the scale tier really runs at 100k nets
        "nets_per_second_floor": ...,
        "bytes_per_net_ceiling": ...,
        "compile_fraction": ...,
        # Multi-core sharded sweeps: the parallel phase must run with 4
        # workers, match the single-shard sweep exactly (0 ULP), and keep its
        # speedup floor asserted wherever the runner has the cores
        # (parallel_gate_enforced records whether it did).
        "shards": 4,
        "parallel_speedup_floor": 2.0,
        "parallel_equivalence_exact": True,
        "boundary_events_exchanged": ...,
        "parallel_gate_enforced": ...,
    },
    "BENCH_serve.json": {
        # Warm queries are snapshot reads: zero analyses, zero re-timed nets.
        "warm_query_analyses": 0,
        "warm_query_retimed_nets": 0,
        "warm_qps_floor": 50.0,
        # A cold attach pays one full analysis of the whole workload...
        "attach_retimed_nets": 1024,
        # ...while an edit round-trip re-times only the edit's dirty cone.
        "round_trip.retimed_nets": 2,
        "round_trip.dirty_nets": 2,
    },
    "BENCH_graph_throughput.json": {
        "naive_subset_events": ...,  # the naive baseline is measured, not skipped
        "speedup_floor": 2.0,
        # Array-batched solving: every cache miss must flow through the batch
        # path (fill rate 1.0) and the >= 3x uncached-throughput gate must
        # stay asserted — memoization alone cannot satisfy it.
        "batched_solves": ...,
        "batch_fill_rate": 1.0,
        "uncached_speedup_floor": 3.0,
    },
}

#: Tracked fields whose *presence* is pinned (via :data:`REQUIRED_TRACKED`)
#: but whose value legitimately varies run to run — measured ratios that are
#: worth recording next to their workload, yet would make the equality diff
#: flaky.  They are skipped when comparing against the baseline.
VOLATILE_TRACKED = {
    "BENCH_scale.json": {"compile_fraction"},
}


def flatten(value, prefix=""):
    """(path, leaf) pairs of a nested JSON structure, deterministically ordered."""
    if isinstance(value, dict):
        for key in sorted(value):
            yield from flatten(value[key], f"{prefix}.{key}" if prefix else key)
    elif isinstance(value, list):
        for index, item in enumerate(value):
            yield from flatten(item, f"{prefix}[{index}]")
    else:
        yield prefix, value


def check_required(name: str, current: dict) -> list:
    """Mismatch lines for :data:`REQUIRED_TRACKED` fields of one report."""
    problems = []
    tracked = dict(flatten(current.get("tracked", {})))
    for path, expected in REQUIRED_TRACKED.get(name, {}).items():
        if path not in tracked:
            problems.append(f"{name}: required tracked.{path} is missing")
        elif expected is not ... and tracked[path] != expected:
            problems.append(f"{name}: tracked.{path} must be {expected!r}, "
                            f"got {tracked[path]!r}")
    return problems


def compare_tracked(name: str, baseline: dict, current: dict) -> list:
    """Human-readable mismatch lines between two reports' tracked sections."""
    problems = []
    for payload, label in ((baseline, "baseline"), (current, "current")):
        if "tracked" not in payload:
            problems.append(f"{name}: {label} report has no 'tracked' section")
    if problems:
        return problems
    old = dict(flatten(baseline["tracked"]))
    new = dict(flatten(current["tracked"]))
    volatile = VOLATILE_TRACKED.get(name, set())
    for path in sorted(old.keys() | new.keys()):
        if path in volatile:
            continue
        if path not in new:
            problems.append(f"{name}: tracked.{path} disappeared "
                            f"(baseline: {old[path]!r})")
        elif path not in old:
            problems.append(f"{name}: tracked.{path} appeared "
                            f"(current: {new[path]!r})")
        elif old[path] != new[path]:
            problems.append(f"{name}: tracked.{path} changed "
                            f"{old[path]!r} -> {new[path]!r}")
    return problems


def main(argv) -> int:
    if len(argv) != 3:
        print(__doc__.strip().splitlines()[0])
        print("usage: python scripts/compare_bench_reports.py "
              "BASELINE_DIR CURRENT_DIR", file=sys.stderr)
        return 2
    baseline_dir, current_dir = Path(argv[1]), Path(argv[2])
    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"error: no BENCH_*.json baselines in {baseline_dir}",
              file=sys.stderr)
        return 2
    problems = []
    compared = 0
    for path in baselines:
        current_path = current_dir / path.name
        if not current_path.is_file():
            problems.append(f"{path.name}: benchmark did not produce a report")
            continue
        baseline = json.loads(path.read_text())
        current = json.loads(current_path.read_text())
        problems.extend(compare_tracked(path.name, baseline, current))
        problems.extend(check_required(path.name, current))
        compared += 1
    for path in sorted(current_dir.glob("BENCH_*.json")):
        if not (baseline_dir / path.name).is_file():
            print(f"note: {path.name} has no committed baseline yet")
    if problems:
        print(f"tracked benchmark fields drifted ({len(problems)} problem(s)):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"tracked benchmark fields match the baseline "
          f"({compared} report(s) compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
